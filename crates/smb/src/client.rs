use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shmcaffe_rdma::{MemoryRegion, RdmaError};
use shmcaffe_simnet::fault::FaultError;
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::SimContext;

use crate::retry::RetryPolicy;
use crate::server::{ShmKey, SmbServer};
use crate::tag_access;
use crate::SmbError;

/// Counters of fault effects one client has observed across its retrying
/// operations (shared between clones of the same client).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientFaultStats {
    /// Individual attempts that failed with a transient transport error.
    pub faults: u64,
    /// Failed attempts that a later attempt recovered from.
    pub retries: u64,
    /// Longest virtual time (ms) from a retried op's first attempt to its
    /// eventual success — the client's worst-case recovery latency.
    pub max_recovery_ms: f64,
    /// Mutations rejected with [`SmbError::FencedEpoch`] before this
    /// client refreshed its carried epoch.
    pub fenced: u64,
    /// Corruption events detected end-to-end by this client's retrying
    /// operations: poisoned pages ([`SmbError::Corrupted`]) plus wire
    /// checksum mismatches ([`SmbError::CorruptedWire`]).
    pub corruptions_detected: u64,
    /// Poisoned pages this client repaired from the pair's other member.
    pub corruptions_repaired: u64,
    /// Detected corruptions with no clean copy left to repair from
    /// (surfaced as [`SmbError::Unrepairable`]).
    pub corruptions_unrepairable: u64,
}

/// An allocated SMB buffer: the SHM key plus the access key (rkey) returned
/// by the server (paper Fig. 2 step "SHM access key").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmbBuffer {
    /// The generation key identifying the segment.
    pub key: ShmKey,
    /// The RDMA access key granting direct access.
    pub mr: MemoryRegion,
    /// Modelled wire size of a full-buffer transfer, in bytes.
    pub wire_bytes: u64,
}

impl SmbBuffer {
    /// Buffer length in f32 elements.
    pub fn len(&self) -> usize {
        self.mr.len
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.mr.len == 0
    }
}

/// Where a client's operations land: one fixed server, or a replicated
/// pair whose active member can change at failover.
#[derive(Clone)]
enum Route {
    Single(SmbServer),
    Replicated(crate::SmbPair),
}

/// A worker-side handle to the SMB server, bound to the worker's node.
///
/// All operations charge virtual time: control messages pay the configured
/// control latency; data movement pays RDMA wire time on the fabric.
///
/// Every operation re-resolves the segment's access key from the currently
/// active server, so a buffer handle stays valid across failover to a
/// standby (the mirror keeps segments under the same [`ShmKey`]s).
#[derive(Clone)]
pub struct SmbClient {
    route: Route,
    local: NodeId,
    stats: Arc<Mutex<ClientFaultStats>>,
    /// The fencing epoch this client believes active (carried with every
    /// mutation against a replicated pair; ignored on a single server).
    /// Shared between clones so a worker and its update thread fence as
    /// one client.
    carried: Arc<AtomicU64>,
}

impl fmt::Debug for SmbClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmbClient").field("local", &self.local).finish()
    }
}

impl SmbClient {
    /// Binds a client on `local` to `server`.
    pub fn new(server: SmbServer, local: NodeId) -> Self {
        SmbClient {
            route: Route::Single(server),
            local,
            stats: Arc::new(Mutex::new(ClientFaultStats::default())),
            carried: Arc::new(AtomicU64::new(1)),
        }
    }

    /// Binds a client on `local` to a replicated server pair: operations
    /// go to the pair's active member, and the retrying operations fail
    /// over to the standby when they observe the primary's crash.
    pub fn with_failover(pair: crate::SmbPair, local: NodeId) -> Self {
        SmbClient {
            route: Route::Replicated(pair),
            local,
            stats: Arc::new(Mutex::new(ClientFaultStats::default())),
            carried: Arc::new(AtomicU64::new(1)),
        }
    }

    /// The fencing epoch this client currently carries with mutations.
    pub fn carried_epoch(&self) -> u64 {
        self.carried.load(Ordering::Acquire)
    }

    /// The node this client runs on.
    pub fn local_node(&self) -> NodeId {
        self.local
    }

    /// Fault counters accumulated by this client's retrying operations.
    /// Clones of a client (e.g. a worker's update thread) share the same
    /// counters, so this reports the whole worker's view.
    pub fn fault_stats(&self) -> ClientFaultStats {
        *self.stats.lock()
    }

    /// Whether this client's node is currently severed from the server it
    /// would route an operation to by a seeded network partition (in
    /// either direction). Retrying operations that exhaust their budget
    /// inside a partition window surface a summarized
    /// [`SmbError::Timeout`] that hides the cause; degraded-mode callers
    /// (SEASGD partition buffering) use this probe to distinguish a
    /// partition outage — worth buffering through — from other loss.
    pub fn partitioned_from_server(&self, ctx: &SimContext) -> bool {
        let server = self.server();
        let node = server.node();
        if node == self.local {
            return false;
        }
        server.rdma().fabric().fault_injector().is_some_and(|inj| {
            inj.partitioned(self.local, node, ctx.now())
                || inj.partitioned(node, self.local, ctx.now())
        })
    }

    /// The replicated pair behind this client, if it was built with
    /// [`SmbClient::with_failover`].
    pub fn pair(&self) -> Option<&crate::SmbPair> {
        match &self.route {
            Route::Single(_) => None,
            Route::Replicated(pair) => Some(pair),
        }
    }

    /// The server this client currently talks to (the active member of a
    /// replicated pair). Control-plane callers (eviction sweeps, stats)
    /// use this; the data-plane ops below resolve the active server per
    /// attempt themselves.
    pub fn server(&self) -> SmbServer {
        match &self.route {
            Route::Single(s) => s.clone(),
            Route::Replicated(pair) => {
                if pair.promoted() {
                    pair.standby().clone()
                } else {
                    pair.primary().clone()
                }
            }
        }
    }

    /// The active server for an in-simulation operation. For a replicated
    /// pair this also joins the promotion stamp (the promote→access
    /// happens-before edge) into the calling process's clock.
    ///
    /// If the primary has become unserviceable — crashed, or partitioned
    /// away from this client with its authority lease already expired —
    /// and nobody has promoted the standby yet, this performs the
    /// failover first: plain (non-retrying) operations transfer
    /// infallibly, so they must never be routed at an endpoint that can
    /// never answer. The fault-gated retrying attempts use
    /// [`SmbClient::active_raw`] instead — they *want* to hit the dead
    /// primary, observe [`FaultError::NodeCrashed`] through the gate (which
    /// charges the detection latency and the fault/retry accounting), and
    /// only then fail over.
    ///
    /// [`FaultError::NodeCrashed`]: shmcaffe_simnet::fault::FaultError::NodeCrashed
    fn active(&self, ctx: &SimContext) -> SmbServer {
        if let Route::Replicated(pair) = &self.route {
            if pair.primary_unserviceable(ctx, self.local) {
                pair.fail_over(ctx, self.local);
                self.refresh_epoch(ctx);
            }
        }
        self.active_raw(ctx)
    }

    /// [`SmbClient::active`] without the proactive crash check: routes by
    /// the pair's current promotion state only.
    fn active_raw(&self, ctx: &SimContext) -> SmbServer {
        match &self.route {
            Route::Single(s) => {
                let _ = ctx;
                s.clone()
            }
            Route::Replicated(pair) => pair.active_server(ctx),
        }
    }

    fn control_round_trip(&self, ctx: &SimContext, server: &SmbServer) {
        let lat = server.control_latency();
        ctx.sleep(lat + lat);
    }

    /// Re-reads the pair's active fencing epoch into this client's carried
    /// epoch, joining the promotion winner's fence stamp (the
    /// fence-acquire→first-fenced-write happens-before edge). No-op for a
    /// single-server route.
    fn refresh_epoch(&self, ctx: &SimContext) {
        if let Route::Replicated(pair) = &self.route {
            self.carried.store(pair.observe_fence(ctx), Ordering::Release);
        }
    }

    /// Epoch admission for a *plain* (infallible, non-retrying) mutation.
    /// Plain ops have no retry loop to recover a rejection through, so
    /// observing the promoted role via routing counts as their epoch
    /// discovery: the carried epoch refreshes first, and admission then
    /// rejects only genuinely illegal writes (a primary past its
    /// authority lease — the split-brain window).
    fn admit_plain(&self, ctx: &SimContext, key: ShmKey) -> Result<(), SmbError> {
        let Route::Replicated(pair) = &self.route else { return Ok(()) };
        if pair.promoted() {
            self.refresh_epoch(ctx);
        }
        self.check_admission(ctx, pair, key)
    }

    /// Strict epoch admission for one retrying attempt: the carried epoch
    /// is presented as-is, and a stale one is rejected
    /// [`SmbError::FencedEpoch`] — the retry loop fails over and
    /// refreshes before the next attempt.
    fn admit_attempt(&self, ctx: &SimContext, key: ShmKey) -> Result<(), SmbError> {
        let Route::Replicated(pair) = &self.route else { return Ok(()) };
        self.check_admission(ctx, pair, key)
    }

    fn check_admission(
        &self,
        ctx: &SimContext,
        pair: &crate::SmbPair,
        key: ShmKey,
    ) -> Result<(), SmbError> {
        let r = pair.admit_mutation(ctx, key, self.carried.load(Ordering::Acquire));
        if r.is_err() {
            self.stats.lock().fenced += 1;
        }
        r
    }

    /// Creates a named shared buffer on the server (master-only in the
    /// ShmCaffe protocol) and returns the SHM key to broadcast.
    ///
    /// `wire_bytes` models the buffer's logical size for timing; `None`
    /// uses the physical size.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::DuplicateName`] for a reused name.
    pub fn create(
        &self,
        ctx: &SimContext,
        name: &str,
        elems: usize,
        wire_bytes: Option<u64>,
    ) -> Result<ShmKey, SmbError> {
        let server = self.active(ctx);
        self.control_round_trip(ctx, &server);
        self.admit_plain(ctx, ShmKey(0))?;
        server.create_segment(ctx, name, elems, wire_bytes)
    }

    /// Requests allocation of the segment named by a broadcast SHM key and
    /// receives the access key (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::UnknownKey`] for a dead key.
    pub fn alloc(&self, ctx: &SimContext, key: ShmKey) -> Result<SmbBuffer, SmbError> {
        let server = self.active(ctx);
        self.control_round_trip(ctx, &server);
        let (mr, wire_bytes) = server.segment(key)?;
        // The alloc reply carries the creator's stamp: creation
        // happens-before every access through the returned handle.
        #[cfg(feature = "race-detect")]
        if let Some(stamp) = server.segment_created_stamp(key) {
            ctx.vc_join(&stamp);
        }
        Ok(SmbBuffer { key, mr, wire_bytes })
    }

    /// Deallocates the segment (any holder may free; the ShmCaffe master
    /// frees at shutdown).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::UnknownKey`] if already freed.
    pub fn free(&self, ctx: &SimContext, buf: SmbBuffer) -> Result<(), SmbError> {
        let server = self.active(ctx);
        self.control_round_trip(ctx, &server);
        self.admit_plain(ctx, buf.key)?;
        server.destroy_segment(buf.key)
    }

    /// RDMA-reads the whole buffer into `out`, charging the wire time of
    /// the buffer's logical size.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] if `out.len() != buf.len()`.
    pub fn read(&self, ctx: &SimContext, buf: &SmbBuffer, out: &mut [f32]) -> Result<(), SmbError> {
        if out.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: out.len(),
            });
        }
        let server = self.active(ctx);
        let cfg = server.config();
        let (mr, wire_bytes) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, 0, out.len())?;
        let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
        // Functional copy, zero-time (the wire time is charged below along
        // the full path: server DRAM bus -> server HCA -> client HCA).
        // Stale-tolerant by SEASGD design, hence an atomic read.
        tag_access!(AtomicRead, "smb::client::read", {
            server.rdma().read_wire(ctx, self.local, &mr, 0, out, 0)
        })?;
        let fabric = server.rdma().fabric();
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[server.memory_resource(), fabric.hca_tx(server.node()), fabric.hca_rx(self.local)],
            wire,
            Some(cfg.stream_bps),
        );
        Ok(())
    }

    /// RDMA-writes `data` over the whole buffer, charging the wire time of
    /// the buffer's logical size, and bumps the segment version.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] if `data.len() != buf.len()`.
    pub fn write(&self, ctx: &SimContext, buf: &SmbBuffer, data: &[f32]) -> Result<(), SmbError> {
        if data.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: data.len(),
            });
        }
        let server = self.active(ctx);
        self.admit_plain(ctx, buf.key)?;
        let cfg = server.config();
        let (mr, wire_bytes) = server.segment(buf.key)?;
        // Verify-before-mutate: a poisoned page must be repaired (the only
        // CRC-clearing path) before new data may land over it.
        server.verify_region(ctx, buf.key, 0, data.len())?;
        let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
        tag_access!(Write, "smb::client::write", {
            server.rdma().write_wire(ctx, self.local, &mr, 0, data, 0)
        })?;
        server.note_write(ctx, buf.key, 0, data);
        let fabric = server.rdma().fabric();
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[fabric.hca_tx(self.local), fabric.hca_rx(server.node()), server.memory_resource()],
            wire,
            Some(cfg.stream_bps),
        );
        server.bump_version(ctx, buf.key);
        Ok(())
    }

    /// Reads/writes a small sub-range at its true (unscaled) wire size —
    /// used for the control-info region where workers share progress
    /// counters (paper §III-E).
    ///
    /// # Errors
    ///
    /// Returns RDMA bounds errors.
    pub fn read_range(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        out: &mut [f32],
    ) -> Result<(), SmbError> {
        let server = self.active(ctx);
        let (mr, _) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, offset, out.len())?;
        // Progress counters are monotone and stale-tolerant: atomic.
        tag_access!(AtomicRead, "smb::client::read_range", {
            server.rdma().read(ctx, self.local, &mr, offset, out)
        })?;
        Ok(())
    }

    /// Writes a small sub-range at its true wire size (see
    /// [`SmbClient::read_range`]).
    ///
    /// # Errors
    ///
    /// Returns RDMA bounds errors.
    pub fn write_range(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        data: &[f32],
    ) -> Result<(), SmbError> {
        let server = self.active(ctx);
        let (mr, _) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, offset, data.len())?;
        tag_access!(AtomicWrite, "smb::client::write_range", {
            server.rdma().write(ctx, self.local, &mr, offset, data)
        })?;
        server.note_write(ctx, buf.key, offset, data);
        Ok(())
    }

    /// Sends an accumulate request: server-side `dst += src` (paper eq. 7,
    /// steps T.A2–T.A4). Charges one control round trip plus the engine's
    /// queueing and service time; returns the destination's new version.
    ///
    /// # Errors
    ///
    /// Returns key and length-mismatch errors.
    pub fn accumulate(
        &self,
        ctx: &SimContext,
        src: &SmbBuffer,
        dst: &SmbBuffer,
    ) -> Result<u64, SmbError> {
        let server = self.active(ctx);
        self.control_round_trip(ctx, &server);
        self.admit_plain(ctx, dst.key)?;
        server.accumulate(ctx, src.key, dst.key)
    }

    /// Like [`SmbClient::create`], but binds the segment to `owner`'s
    /// lease: if that rank stops heartbeating for longer than
    /// [`crate::SmbServerConfig::lease_timeout`], the server's
    /// [`SmbServer::evict_stale`] reclaims the segment.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::DuplicateName`] for a reused name.
    pub fn create_owned(
        &self,
        ctx: &SimContext,
        name: &str,
        elems: usize,
        wire_bytes: Option<u64>,
        owner: usize,
    ) -> Result<ShmKey, SmbError> {
        let server = self.active(ctx);
        self.control_round_trip(ctx, &server);
        self.admit_plain(ctx, ShmKey(0))?;
        server.create_segment_owned(ctx, name, elems, wire_bytes, Some(owner))
    }

    /// Sends a heartbeat for `owner`, refreshing every lease that rank
    /// holds. One-way control message (no reply needed).
    pub fn heartbeat(&self, ctx: &SimContext, owner: usize) {
        let server = self.active(ctx);
        ctx.sleep(server.control_latency());
        server.touch_owner(ctx, owner);
    }

    /// Acknowledges this rank's evictions on the active server, reclaiming
    /// its tombstones (see [`SmbServer::ack_eviction`]). A rejoining worker
    /// calls this after reading its [`SmbError::LeaseExpired`] verdicts and
    /// before re-creating its buffers. Returns the tombstones reclaimed.
    pub fn ack_eviction(&self, ctx: &SimContext, owner: usize) -> usize {
        let server = self.active(ctx);
        self.control_round_trip(ctx, &server);
        server.ack_eviction(ctx, owner)
    }

    /// Wraps a fabric fault as [`SmbError::Unavailable`] with the failed
    /// queue pair identified, transitioning that QP to Error so plain RDMA
    /// ops on the pair fail fast until the retry loop re-arms it.
    fn unavailable(&self, server: &SmbServer, key: ShmKey, fault: FaultError) -> SmbError {
        server.rdma().fault_qp(self.local, server.node());
        SmbError::Unavailable {
            key,
            node: server.node(),
            cause: RdmaError::QpFault { local: self.local, remote: server.node(), fault },
        }
    }

    /// Per-stream bandwidth after applying a fault-window degradation cap.
    fn effective_stream_bps(&self, server: &SmbServer, cap: Option<f64>) -> f64 {
        let nominal = server.config().stream_bps;
        cap.map_or(nominal, |bw| nominal.min(bw))
    }

    /// Applies any seeded wire bit-flip to an inbound (read) payload and
    /// verifies it end-to-end against the pre-flight checksum — the
    /// software stand-in for InfiniBand's hardware ICRC on the fallible
    /// transfer paths. On mismatch the buffer's contents are garbage and
    /// the caller must discard them (its retry loop re-reads).
    fn verify_inbound(
        &self,
        server: &SmbServer,
        key: ShmKey,
        out: &mut [f32],
    ) -> Result<(), SmbError> {
        let Some(inj) = server.rdma().fabric().fault_injector() else { return Ok(()) };
        if !inj.plan().has_corruption_faults() {
            return Ok(());
        }
        let Some((elem, bit)) = inj.draw_wire_flip(out.len()) else { return Ok(()) };
        let sent = crate::crc::crc32c_f32(out);
        out[elem] = f32::from_bits(out[elem].to_bits() ^ (1 << bit));
        if crate::crc::crc32c_f32(out) != sent {
            return Err(SmbError::CorruptedWire { key, node: server.node() });
        }
        Ok(())
    }

    /// Draws seeded wire corruption for an outbound (write) payload:
    /// `Err(CorruptedWire)` when a bit-flip hits — CRC32C detects every
    /// single-bit error, so the server's wire checksum rejects the whole
    /// payload and nothing lands — or `Ok(prefix)` with the number of
    /// elements actually delivered: `data.len()` when intact, fewer for a
    /// torn write (the transport acknowledges but only a prefix reached
    /// server DRAM — *silent* until a later verification catches the
    /// recorded-intent/actual mismatch).
    fn outbound_delivery(
        &self,
        server: &SmbServer,
        key: ShmKey,
        data: &[f32],
    ) -> Result<usize, SmbError> {
        let Some(inj) = server.rdma().fabric().fault_injector() else { return Ok(data.len()) };
        if !inj.plan().has_corruption_faults() {
            return Ok(data.len());
        }
        let flip = inj.draw_wire_flip(data.len());
        let torn = inj.draw_torn_write(data.len());
        if flip.is_some() {
            return Err(SmbError::CorruptedWire { key, node: server.node() });
        }
        Ok(torn.unwrap_or(data.len()))
    }

    /// Runs `op` under `policy`: transient failures are retried after a
    /// jittered exponential backoff (virtual-time sleep), re-arming the
    /// queue pair to the server before each retry. When an attempt
    /// observes the server's *crash* (not a transient link fault) and the
    /// client is bound to a replicated pair, the standby is promoted and
    /// the queue pair reconnected before the next attempt, which then
    /// lands on the standby. Gives up with [`SmbError::Timeout`] once
    /// attempts or the cumulative deadline run out; non-transient errors
    /// pass straight through.
    fn retrying<T>(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        policy: &RetryPolicy,
        mut op: impl FnMut(&SimContext) -> Result<T, SmbError>,
    ) -> Result<T, SmbError> {
        let started = ctx.now();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match op(ctx) {
                Ok(v) => {
                    if attempts > 1 {
                        let mut stats = self.stats.lock();
                        stats.retries += u64::from(attempts - 1);
                        let recovery = ctx.now().since(started).as_millis_f64();
                        stats.max_recovery_ms = stats.max_recovery_ms.max(recovery);
                    }
                    return Ok(v);
                }
                Err(e) if e.is_transient() => {
                    let corrupt_page = match &e {
                        SmbError::Corrupted { key: ck, node, page } => Some((*ck, *node, *page)),
                        _ => None,
                    };
                    {
                        let mut stats = self.stats.lock();
                        stats.faults += 1;
                        if e.is_corruption() {
                            stats.corruptions_detected += 1;
                        }
                    }
                    if let Some((ck, node, page)) = corrupt_page {
                        match &self.route {
                            Route::Single(_) => {
                                // No replica to repair from: the poisoned
                                // page is permanently lost. Retrying would
                                // hit the same poison forever.
                                self.stats.lock().corruptions_unrepairable += 1;
                                return Err(SmbError::Unrepairable { key: ck, node, page });
                            }
                            Route::Replicated(pair) => match pair.repair_page(ctx, ck, page) {
                                Ok(()) => {
                                    self.stats.lock().corruptions_repaired += 1;
                                }
                                Err(re) if re.is_transient() => {
                                    // A wire fault interrupted the repair;
                                    // the next attempt re-detects the
                                    // poison and retries the repair.
                                }
                                Err(re) => {
                                    self.stats.lock().corruptions_unrepairable += 1;
                                    return Err(re);
                                }
                            },
                        }
                    } else if let Route::Replicated(pair) = &self.route {
                        // Fail over on: the primary's crash; a fencing
                        // rejection (a newer epoch is active — refresh and
                        // follow it); or a partition whose isolated primary
                        // has already lost its authority lease (promotion
                        // is legal, so stop banging on the unreachable
                        // side). A partition with a live lease is ridden
                        // out instead — the primary may still be renewed.
                        if e.is_server_crash()
                            || e.is_fenced()
                            || (e.is_partitioned() && pair.authority_expired(ctx))
                        {
                            pair.fail_over(ctx, self.local);
                            self.refresh_epoch(ctx);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
            if attempts >= policy.max_attempts {
                break;
            }
            let backoff = policy.backoff(attempts);
            if ctx.now().since(started) + backoff > policy.deadline {
                break;
            }
            ctx.sleep(backoff);
            let server = self.active_raw(ctx);
            server.rdma().rearm_qp(ctx, self.local, server.node());
        }
        Err(SmbError::Timeout {
            key,
            node: self.active_raw(ctx).node(),
            waited: ctx.now().since(started),
            attempts,
        })
    }

    /// One fallible read attempt: consults the fabric's fault injector on
    /// the server→client direction, then moves the data (possibly at
    /// degraded bandwidth).
    fn try_read_once(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        out: &mut [f32],
    ) -> Result<(), SmbError> {
        let server = self.active_raw(ctx);
        let fabric = server.rdma().fabric();
        let cap = fabric
            .fault_check(ctx, server.node(), self.local)
            .map_err(|fault| self.unavailable(&server, buf.key, fault))?;
        let cfg = server.config();
        let (mr, wire_bytes) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, 0, out.len())?;
        let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
        tag_access!(AtomicRead, "smb::client::read_retrying", {
            server.rdma().read_wire(ctx, self.local, &mr, 0, out, 0)
        })?;
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[server.memory_resource(), fabric.hca_tx(server.node()), fabric.hca_rx(self.local)],
            wire,
            Some(self.effective_stream_bps(&server, cap)),
        );
        self.verify_inbound(&server, buf.key, out)
    }

    /// One fallible write attempt (client→server direction).
    fn try_write_once(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        data: &[f32],
    ) -> Result<(), SmbError> {
        let server = self.active_raw(ctx);
        let fabric = server.rdma().fabric();
        let cap = fabric
            .fault_check(ctx, self.local, server.node())
            .map_err(|fault| self.unavailable(&server, buf.key, fault))?;
        self.admit_attempt(ctx, buf.key)?;
        let cfg = server.config();
        let (mr, wire_bytes) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, 0, data.len())?;
        let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
        let delivered = match self.outbound_delivery(&server, buf.key, data) {
            Ok(n) => n,
            Err(e) => {
                // The flipped payload crossed the wire before the server's
                // checksum rejected it: full wire time burns, nothing lands.
                shmcaffe_simnet::resource::transfer_path_stream(
                    ctx,
                    &[
                        fabric.hca_tx(self.local),
                        fabric.hca_rx(server.node()),
                        server.memory_resource(),
                    ],
                    wire,
                    Some(self.effective_stream_bps(&server, cap)),
                );
                return Err(e);
            }
        };
        if delivered > 0 {
            tag_access!(Write, "smb::client::write_retrying", {
                server.rdma().write_wire(ctx, self.local, &mr, 0, &data[..delivered], 0)
            })?;
        }
        // Record the *intended* contents: a torn delivery leaves the page
        // CRCs disagreeing with the actual bytes, so a later verification
        // (read, scrub) detects the silent loss.
        server.note_write(ctx, buf.key, 0, data);
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[fabric.hca_tx(self.local), fabric.hca_rx(server.node()), server.memory_resource()],
            wire,
            Some(self.effective_stream_bps(&server, cap)),
        );
        server.bump_version(ctx, buf.key);
        Ok(())
    }

    /// Fault-tolerant [`SmbClient::read`]: each attempt can fail inside an
    /// injected fault window; failures are retried under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] immediately for a bad slice;
    /// [`SmbError::Timeout`] when the policy's attempts/deadline run out.
    pub fn read_retrying(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        out: &mut [f32],
        policy: &RetryPolicy,
    ) -> Result<(), SmbError> {
        if out.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: out.len(),
            });
        }
        self.retrying(ctx, buf.key, policy, |ctx| self.try_read_once(ctx, buf, out))
    }

    /// Fault-tolerant [`SmbClient::write`] (see [`SmbClient::read_retrying`]).
    /// Writes are idempotent full-buffer stores, so re-issuing after a
    /// faulted attempt is safe.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] immediately for a bad slice;
    /// [`SmbError::Timeout`] when the policy's attempts/deadline run out.
    pub fn write_retrying(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        data: &[f32],
        policy: &RetryPolicy,
    ) -> Result<(), SmbError> {
        if data.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: data.len(),
            });
        }
        self.retrying(ctx, buf.key, policy, |ctx| self.try_write_once(ctx, buf, data))
    }

    /// Fault-tolerant [`SmbClient::accumulate`]: the control message to the
    /// server can fail inside a fault window and is retried under `policy`.
    /// The server-side accumulate itself is local to the memory server, so
    /// only the client→server control path is gated.
    ///
    /// # Errors
    ///
    /// Returns key/length errors immediately; [`SmbError::Timeout`] when
    /// the policy's attempts/deadline run out.
    pub fn accumulate_retrying(
        &self,
        ctx: &SimContext,
        src: &SmbBuffer,
        dst: &SmbBuffer,
        policy: &RetryPolicy,
    ) -> Result<u64, SmbError> {
        self.retrying(ctx, src.key, policy, |ctx| {
            let server = self.active_raw(ctx);
            server
                .rdma()
                .fabric()
                .fault_check(ctx, self.local, server.node())
                .map_err(|fault| self.unavailable(&server, src.key, fault))?;
            self.admit_attempt(ctx, dst.key)?;
            self.control_round_trip(ctx, &server);
            server.accumulate(ctx, src.key, dst.key)
        })
    }

    /// Fraction of a buffer's modelled wire size that a `len`-element
    /// sub-range transfer pays (rounded up to a whole byte so a stream of
    /// chunks never undercuts the monolithic cost).
    fn range_wire(buf: &SmbBuffer, overhead: f64, wire_bytes: u64, len: usize) -> u64 {
        let frac = len as f64 / buf.len().max(1) as f64;
        (wire_bytes as f64 * (1.0 + overhead) * frac).ceil() as u64
    }

    /// One fallible sub-range read attempt (see [`SmbClient::try_read_once`]):
    /// wire time is the chunk's proportional share of the buffer's modelled
    /// size, so streaming a whole buffer chunk-by-chunk costs the same wire
    /// time as one monolithic read.
    fn try_read_range_once(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        out: &mut [f32],
    ) -> Result<(), SmbError> {
        let server = self.active_raw(ctx);
        let fabric = server.rdma().fabric();
        let cap = fabric
            .fault_check(ctx, server.node(), self.local)
            .map_err(|fault| self.unavailable(&server, buf.key, fault))?;
        let cfg = server.config();
        let (mr, wire_bytes) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, offset, out.len())?;
        let wire = Self::range_wire(buf, cfg.protocol_overhead, wire_bytes, out.len());
        // Stale-tolerant by SEASGD design (same contract as the full read):
        // atomic, so it coexists with concurrent accumulate RMWs on other
        // workers' behalf without being flagged as a race.
        tag_access!(AtomicRead, "smb::client::read_range_retrying", {
            server.rdma().read_wire(ctx, self.local, &mr, offset, out, 0)
        })?;
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[server.memory_resource(), fabric.hca_tx(server.node()), fabric.hca_rx(self.local)],
            wire,
            Some(self.effective_stream_bps(&server, cap)),
        );
        self.verify_inbound(&server, buf.key, out)
    }

    /// One fallible sub-range write attempt (client→server direction).
    fn try_write_range_once(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        data: &[f32],
    ) -> Result<(), SmbError> {
        let server = self.active_raw(ctx);
        let fabric = server.rdma().fabric();
        let cap = fabric
            .fault_check(ctx, self.local, server.node())
            .map_err(|fault| self.unavailable(&server, buf.key, fault))?;
        self.admit_attempt(ctx, buf.key)?;
        let cfg = server.config();
        let (mr, wire_bytes) = server.segment(buf.key)?;
        server.verify_region(ctx, buf.key, offset, data.len())?;
        let wire = Self::range_wire(buf, cfg.protocol_overhead, wire_bytes, data.len());
        let delivered = match self.outbound_delivery(&server, buf.key, data) {
            Ok(n) => n,
            Err(e) => {
                shmcaffe_simnet::resource::transfer_path_stream(
                    ctx,
                    &[
                        fabric.hca_tx(self.local),
                        fabric.hca_rx(server.node()),
                        server.memory_resource(),
                    ],
                    wire,
                    Some(self.effective_stream_bps(&server, cap)),
                );
                return Err(e);
            }
        };
        if delivered > 0 {
            tag_access!(Write, "smb::client::write_range_retrying", {
                server.rdma().write_wire(ctx, self.local, &mr, offset, &data[..delivered], 0)
            })?;
        }
        server.note_write(ctx, buf.key, offset, data);
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[fabric.hca_tx(self.local), fabric.hca_rx(server.node()), server.memory_resource()],
            wire,
            Some(self.effective_stream_bps(&server, cap)),
        );
        server.bump_version(ctx, buf.key);
        Ok(())
    }

    /// Fault-tolerant sub-range read at the range's *proportional* wire
    /// cost — the streaming-read building block of the chunked exchange
    /// (unlike [`SmbClient::read_range`], which moves control-info bytes at
    /// their true size).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] immediately if the range exceeds
    /// the buffer; [`SmbError::Timeout`] when the policy runs out.
    pub fn read_range_retrying(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        out: &mut [f32],
        policy: &RetryPolicy,
    ) -> Result<(), SmbError> {
        if offset + out.len() > buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: offset + out.len(),
            });
        }
        self.retrying(ctx, buf.key, policy, |ctx| self.try_read_range_once(ctx, buf, offset, out))
    }

    /// Fault-tolerant sub-range write at proportional wire cost (the T.A1
    /// step of a chunked exchange). Idempotent per chunk: re-issuing a
    /// faulted attempt overwrites the same range.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] immediately if the range exceeds
    /// the buffer; [`SmbError::Timeout`] when the policy runs out.
    pub fn write_range_retrying(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        offset: usize,
        data: &[f32],
        policy: &RetryPolicy,
    ) -> Result<(), SmbError> {
        if offset + data.len() > buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: offset + data.len(),
            });
        }
        self.retrying(ctx, buf.key, policy, |ctx| self.try_write_range_once(ctx, buf, offset, data))
    }

    /// Fault-tolerant range accumulate: server-side `dst[range] +=
    /// src[range]` (the T.A2–T.A3 step of a chunked exchange), engine time
    /// charged proportionally to the range. Same gating as
    /// [`SmbClient::accumulate_retrying`].
    ///
    /// # Errors
    ///
    /// Returns key/length/bounds errors immediately; [`SmbError::Timeout`]
    /// when the policy runs out.
    pub fn accumulate_range_retrying(
        &self,
        ctx: &SimContext,
        src: &SmbBuffer,
        dst: &SmbBuffer,
        offset: usize,
        len: usize,
        policy: &RetryPolicy,
    ) -> Result<u64, SmbError> {
        self.retrying(ctx, src.key, policy, |ctx| {
            let server = self.active_raw(ctx);
            server
                .rdma()
                .fabric()
                .fault_check(ctx, self.local, server.node())
                .map_err(|fault| self.unavailable(&server, src.key, fault))?;
            self.admit_attempt(ctx, dst.key)?;
            self.control_round_trip(ctx, &server);
            server.accumulate_range(ctx, src.key, dst.key, offset, len)
        })
    }

    /// Writes a checkpoint buffer under `policy`, tagged as an *atomic*
    /// (seqlock-style versioned) publication. Unlike a SEASGD weight
    /// write, a checkpoint write and a rejoining worker's checkpoint read
    /// have **no** happens-before edge — the rejoiner discovers the
    /// checkpoint through the replicated segment catalog, not through a
    /// message from the writer — so both sides must use the versioned
    /// (atomic) protocol to stay race-free by design.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] immediately for a bad slice;
    /// [`SmbError::Timeout`] when the policy's attempts/deadline run out.
    pub fn checkpoint_write(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        data: &[f32],
        policy: &RetryPolicy,
    ) -> Result<(), SmbError> {
        if data.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: data.len(),
            });
        }
        self.retrying(ctx, buf.key, policy, |ctx| {
            let server = self.active_raw(ctx);
            let fabric = server.rdma().fabric();
            let cap = fabric
                .fault_check(ctx, self.local, server.node())
                .map_err(|fault| self.unavailable(&server, buf.key, fault))?;
            self.admit_attempt(ctx, buf.key)?;
            let cfg = server.config();
            let (mr, wire_bytes) = server.segment(buf.key)?;
            server.verify_region(ctx, buf.key, 0, data.len())?;
            let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
            let delivered = match self.outbound_delivery(&server, buf.key, data) {
                Ok(n) => n,
                Err(e) => {
                    shmcaffe_simnet::resource::transfer_path_stream(
                        ctx,
                        &[
                            fabric.hca_tx(self.local),
                            fabric.hca_rx(server.node()),
                            server.memory_resource(),
                        ],
                        wire,
                        Some(self.effective_stream_bps(&server, cap)),
                    );
                    return Err(e);
                }
            };
            if delivered > 0 {
                tag_access!(AtomicWrite, "smb::client::checkpoint_write", {
                    server.rdma().write_wire(ctx, self.local, &mr, 0, &data[..delivered], 0)
                })?;
            }
            server.note_write(ctx, buf.key, 0, data);
            shmcaffe_simnet::resource::transfer_path_stream(
                ctx,
                &[
                    fabric.hca_tx(self.local),
                    fabric.hca_rx(server.node()),
                    server.memory_resource(),
                ],
                wire,
                Some(self.effective_stream_bps(&server, cap)),
            );
            server.bump_version(ctx, buf.key);
            Ok(())
        })
    }

    /// Reads a checkpoint buffer under `policy` with the atomic
    /// (versioned) protocol — the read side of
    /// [`SmbClient::checkpoint_write`], used by rejoining workers.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::SizeMismatch`] immediately for a bad slice;
    /// [`SmbError::Timeout`] when the policy's attempts/deadline run out.
    pub fn checkpoint_read(
        &self,
        ctx: &SimContext,
        buf: &SmbBuffer,
        out: &mut [f32],
        policy: &RetryPolicy,
    ) -> Result<(), SmbError> {
        if out.len() != buf.len() {
            return Err(SmbError::SizeMismatch {
                key: buf.key,
                expected: buf.len(),
                got: out.len(),
            });
        }
        self.retrying(ctx, buf.key, policy, |ctx| {
            let server = self.active_raw(ctx);
            let fabric = server.rdma().fabric();
            let cap = fabric
                .fault_check(ctx, server.node(), self.local)
                .map_err(|fault| self.unavailable(&server, buf.key, fault))?;
            let cfg = server.config();
            let (mr, wire_bytes) = server.segment(buf.key)?;
            server.verify_region(ctx, buf.key, 0, out.len())?;
            let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
            tag_access!(AtomicRead, "smb::client::checkpoint_read", {
                server.rdma().read_wire(ctx, self.local, &mr, 0, out, 0)
            })?;
            shmcaffe_simnet::resource::transfer_path_stream(
                ctx,
                &[
                    server.memory_resource(),
                    fabric.hca_tx(server.node()),
                    fabric.hca_rx(self.local),
                ],
                wire,
                Some(self.effective_stream_bps(&server, cap)),
            );
            self.verify_inbound(&server, buf.key, out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_rdma::RdmaFabric;
    use shmcaffe_simnet::channel::SimChannel;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;

    fn setup(nodes: usize) -> SmbServer {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(nodes)));
        SmbServer::new(rdma).unwrap()
    }

    #[test]
    fn create_alloc_read_write_roundtrip() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let key = client.create(&ctx, "buf", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            let mut out = [0.0f32; 4];
            client.read(&ctx, &buf, &mut out).unwrap();
            assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
            client.free(&ctx, buf).unwrap();
        });
        sim.run();
        assert_eq!(server.segment_count(), 0);
    }

    #[test]
    fn duplicate_name_rejected() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            client.create(&ctx, "dup", 4, None).unwrap();
            assert!(matches!(
                client.create(&ctx, "dup", 4, None),
                Err(SmbError::DuplicateName { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn alloc_of_unknown_key_fails() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            assert!(matches!(client.alloc(&ctx, ShmKey(99)), Err(SmbError::UnknownKey { .. })));
        });
        sim.run();
    }

    #[test]
    fn size_mismatch_rejected() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let key = client.create(&ctx, "b", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let mut small = [0.0f32; 2];
            assert!(matches!(
                client.read(&ctx, &buf, &mut small),
                Err(SmbError::SizeMismatch { .. })
            ));
            assert!(matches!(
                client.write(&ctx, &buf, &[0.0; 8]),
                Err(SmbError::SizeMismatch { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn accumulate_folds_increment_into_global() {
        // The SEASGD shared-buffer layout of Fig. 5: one global W_g plus a
        // private ΔW per worker, accumulated server-side.
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("master", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let wg_key = client.create(&ctx, "W_g", 4, None).unwrap();
            let dw_key = client.create(&ctx, "dW_0", 4, None).unwrap();
            let wg = client.alloc(&ctx, wg_key).unwrap();
            let dw = client.alloc(&ctx, dw_key).unwrap();
            client.write(&ctx, &wg, &[1.0; 4]).unwrap();
            client.write(&ctx, &dw, &[0.5, -0.5, 1.0, 0.0]).unwrap();
            let v1 = client.accumulate(&ctx, &dw, &wg).unwrap();
            let mut out = [0.0f32; 4];
            client.read(&ctx, &wg, &mut out).unwrap();
            assert_eq!(out, [1.5, 0.5, 2.0, 1.0]);
            // Accumulate twice: increments add.
            let v2 = client.accumulate(&ctx, &dw, &wg).unwrap();
            assert!(v2 > v1);
            client.read(&ctx, &wg, &mut out).unwrap();
            assert_eq!(out, [2.0, 0.0, 3.0, 1.0]);
        });
        sim.run();
        assert!(server.memory_bytes() > 0);
    }

    #[test]
    fn accumulate_length_mismatch_rejected() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let a = client.alloc(&ctx, client.create(&ctx, "a", 4, None).unwrap()).unwrap();
            let b = client.alloc(&ctx, client.create(&ctx, "b", 8, None).unwrap()).unwrap();
            assert!(matches!(
                client.accumulate(&ctx, &a, &b),
                Err(SmbError::LengthMismatch { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn key_broadcast_handshake_between_workers() {
        // Master creates, "broadcasts" the key through shared state, the
        // slave allocs with the key and sees the master's data.
        let server = setup(2);
        let key_box = std::sync::Arc::new(parking_lot::Mutex::new(None::<ShmKey>));
        let notify = SimChannel::<ShmKey>::new("key_bcast");
        let mut sim = Simulation::new();
        {
            let s = server.clone();
            let notify = notify.clone();
            let key_box = key_box.clone();
            sim.spawn("master", move |ctx| {
                let client = SmbClient::new(s, NodeId(0));
                let key = client.create(&ctx, "shared", 2, None).unwrap();
                let buf = client.alloc(&ctx, key).unwrap();
                client.write(&ctx, &buf, &[7.0, 8.0]).unwrap();
                *key_box.lock() = Some(key);
                notify.send(&ctx, key);
            });
        }
        {
            let s = server.clone();
            sim.spawn("slave", move |ctx| {
                let key = notify.recv(&ctx);
                let client = SmbClient::new(s, NodeId(1));
                let buf = client.alloc(&ctx, key).unwrap();
                let mut out = [0.0f32; 2];
                client.read(&ctx, &buf, &mut out).unwrap();
                assert_eq!(out, [7.0, 8.0]);
            });
        }
        sim.run();
    }

    #[test]
    fn notifications_carry_versions() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            let key = client.create(&ctx, "n", 2, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let sub = s.subscribe(key);
            client.write(&ctx, &buf, &[1.0, 1.0]).unwrap();
            assert_eq!(sub.try_recv(&ctx), Some(1));
            assert_eq!(s.version(key).unwrap(), 1);
        });
        sim.run();
    }

    #[test]
    fn lease_eviction_reclaims_crashed_workers_segment() {
        use shmcaffe_simnet::SimDuration;
        let server = setup(2);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("supervisor", move |ctx| {
            let alive = SmbClient::new(s.clone(), NodeId(0));
            let k_alive = alive.create_owned(&ctx, "dw_alive", 4, None, 0).unwrap();
            let k_dead = alive.create_owned(&ctx, "dw_dead", 4, None, 1).unwrap();
            assert_eq!(s.lease_owner(k_dead), Some(1));
            // Rank 0 heartbeats every 200 ms; rank 1 never does (crashed).
            for _ in 0..3 {
                ctx.sleep(SimDuration::from_millis(200));
                alive.heartbeat(&ctx, 0);
            }
            // 600 ms without a heartbeat from rank 1 > 500 ms lease timeout.
            let evicted = s.evict_stale(&ctx);
            assert_eq!(evicted, vec![k_dead]);
            assert_eq!(s.lease_owner(k_dead), None);
            assert!(matches!(
                alive.alloc(&ctx, k_dead),
                Err(SmbError::LeaseExpired { owner: 1, .. })
            ));
            // Rank 0's lease is fresh; its segment survives eviction.
            assert!(alive.alloc(&ctx, k_alive).is_ok());
        });
        sim.run();
        assert_eq!(server.segment_count(), 1);
    }

    #[test]
    fn tombstones_are_bounded_by_horizon_and_ack() {
        use shmcaffe_simnet::SimDuration;
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
        let cfg = crate::SmbServerConfig {
            lease_timeout: SimDuration::from_millis(50),
            tombstone_horizon: SimDuration::from_millis(300),
            ..Default::default()
        };
        let server = SmbServer::with_config(rdma, cfg).unwrap();
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("supervisor", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            client.create_owned(&ctx, "dw_1", 4, None, 1).unwrap();
            client.create_owned(&ctx, "dw_2", 4, None, 2).unwrap();
            ctx.sleep(SimDuration::from_millis(100));
            assert_eq!(s.evict_stale(&ctx).len(), 2);
            assert_eq!(s.tombstone_count(), 2);
            // Rank 1 rejoins and acks its eviction: its tombstone goes now.
            assert_eq!(client.ack_eviction(&ctx, 1), 1);
            assert_eq!(s.tombstone_count(), 1);
            assert_eq!(client.ack_eviction(&ctx, 1), 0, "ack is idempotent");
            // Rank 2 never acks; the horizon reclaims its tombstone on a
            // later sweep instead of letting it grow without bound.
            ctx.sleep(SimDuration::from_millis(400));
            s.evict_stale(&ctx);
            assert_eq!(s.tombstone_count(), 0);
        });
        sim.run();
    }

    #[test]
    fn tombstone_gc_keeps_entries_aged_exactly_the_horizon() {
        use shmcaffe_simnet::{SimDuration, SimTime};
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
        let cfg = crate::SmbServerConfig {
            lease_timeout: SimDuration::from_millis(50),
            tombstone_horizon: SimDuration::from_millis(300),
            ..Default::default()
        };
        let server = SmbServer::with_config(rdma, cfg).unwrap();
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("supervisor", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(0));
            client.create_owned(&ctx, "dw", 4, None, 1).unwrap();
            // Lease (50 ms) lapses; the eviction at t = 100 ms stamps the
            // tombstone, starting the 300 ms GC horizon.
            ctx.sleep_until(SimTime::from_millis(100));
            assert_eq!(s.evict_stale(&ctx).len(), 1);
            assert_eq!(s.tombstone_count(), 1);
            // GC keeps `age <= horizon`: at exactly t = 400 ms the tombstone
            // is aged precisely the horizon and must survive the sweep, so a
            // rejoiner arriving on the boundary still learns of its eviction.
            ctx.sleep_until(SimTime::from_millis(400));
            s.evict_stale(&ctx);
            assert_eq!(s.tombstone_count(), 1, "boundary entry must be kept");
            // One nanosecond past the horizon it is reclaimed.
            ctx.sleep(SimDuration::from_nanos(1));
            s.evict_stale(&ctx);
            assert_eq!(s.tombstone_count(), 0, "past-boundary entry must be reclaimed");
        });
        sim.run();
    }

    #[test]
    fn retrying_ops_fail_over_to_standby_after_primary_crash() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) };
        let primary_node = NodeId(spec.gpu_nodes);
        let plan = FaultPlan::new(21).crash_memory_server(primary_node, SimTime::from_millis(5));
        let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
        let pair = crate::SmbPair::new(rdma, crate::SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::with_failover(p.clone(), NodeId(0));
            let policy = RetryPolicy::with_seed(21);
            let key = client.create(&ctx, "wg", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write_retrying(&ctx, &buf, &[1.0; 4], &policy).unwrap();
            p.replicate(&ctx).unwrap();
            // Jump past the crash: the next attempt observes NodeCrashed,
            // promotes the standby and lands the write there.
            ctx.sleep_until(SimTime::from_millis(6));
            assert!(!p.promoted());
            client.write_retrying(&ctx, &buf, &[2.0; 4], &policy).unwrap();
            assert!(p.promoted(), "crash observation triggered failover");
            // The same handle keeps working: reads resolve the mirrored
            // segment on the standby under the original ShmKey.
            let mut out = [0.0f32; 4];
            client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
            assert_eq!(out, [2.0; 4]);
            assert_eq!(client.server().node(), p.standby().node());
            // The QP was reconnected to the standby.
            let rdma = p.primary().rdma();
            assert_eq!(rdma.qp_state(NodeId(0), p.standby().node()), shmcaffe_rdma::QpState::Ready);
            assert_eq!(rdma.qp_state(NodeId(0), p.primary().node()), shmcaffe_rdma::QpState::Error);
            let fs = client.fault_stats();
            assert!(fs.faults >= 1 && fs.retries >= 1, "{fs:?}");
        });
        sim.run();
    }

    #[test]
    fn checkpoint_roundtrip_through_versioned_protocol() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let policy = RetryPolicy::with_seed(3);
            let key = client.create(&ctx, "ckpt", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.checkpoint_write(&ctx, &buf, &[9.0, 8.0, 7.0, 6.0], &policy).unwrap();
            let mut out = [0.0f32; 4];
            client.checkpoint_read(&ctx, &buf, &mut out, &policy).unwrap();
            assert_eq!(out, [9.0, 8.0, 7.0, 6.0]);
            assert!(matches!(
                client.checkpoint_write(&ctx, &buf, &[0.0; 2], &policy),
                Err(SmbError::SizeMismatch { .. })
            ));
        });
        sim.run();
    }

    fn setup_faulty(nodes: usize, plan: shmcaffe_simnet::fault::FaultPlan) -> SmbServer {
        let rdma = RdmaFabric::new(Fabric::with_faults(ClusterSpec::paper_testbed(nodes), plan));
        SmbServer::new(rdma).unwrap()
    }

    fn read_through_outage(seed: u64) -> shmcaffe_simnet::SimTime {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        let plan = FaultPlan::new(seed).link_down(
            NodeId(1),
            SimTime::from_millis(1),
            SimTime::from_millis(3),
        );
        let server = setup_faulty(2, plan);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(1));
            let key = client.create(&ctx, "buf", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            // Jump into the middle of the outage window: the retrying read
            // must fail fast inside it and recover after it ends.
            ctx.sleep_until(SimTime::from_micros(1_500));
            let mut out = [0.0f32; 4];
            client.read_retrying(&ctx, &buf, &mut out, &RetryPolicy::with_seed(seed)).unwrap();
            assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
            assert!(ctx.now() > SimTime::from_millis(3), "recovered only after the window");
            // The retry loop re-armed the QP on its way to success.
            assert_eq!(s.rdma().qp_state(NodeId(1), s.node()), shmcaffe_rdma::QpState::Ready);
            // ... and the client accounted for the recovery.
            let fs = client.fault_stats();
            assert!(fs.faults >= 1 && fs.retries >= 1, "{fs:?}");
            assert!(fs.max_recovery_ms > 0.0);
        });
        let end = sim.run();
        let stats = server.rdma().fabric().fault_injector().unwrap().stats();
        assert!(stats.link_down_hits >= 1, "at least one failed attempt");
        end
    }

    #[test]
    fn retrying_read_rides_out_link_down_window() {
        read_through_outage(11);
    }

    #[test]
    fn identical_seeds_give_identical_retry_timelines() {
        assert_eq!(read_through_outage(42), read_through_outage(42));
    }

    #[test]
    fn retrying_write_times_out_against_dead_link() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::{SimDuration, SimTime};
        let plan = FaultPlan::new(5).link_down(NodeId(1), SimTime::ZERO, SimTime::from_secs(10));
        let server = setup_faulty(2, plan);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s.clone(), NodeId(1));
            let key = client.create(&ctx, "buf", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let policy = RetryPolicy {
                max_attempts: 4,
                deadline: SimDuration::from_millis(5),
                ..RetryPolicy::with_seed(1)
            };
            let err = client.write_retrying(&ctx, &buf, &[0.0; 4], &policy).unwrap_err();
            match err {
                SmbError::Timeout { key, node, attempts, .. } => {
                    assert_eq!(key, buf.key);
                    assert_eq!(node, s.node());
                    assert_eq!(attempts, 4);
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
            // The pair is left faulted for the caller to observe.
            assert_eq!(s.rdma().qp_state(NodeId(1), s.node()), shmcaffe_rdma::QpState::Error);
        });
        sim.run();
    }

    #[test]
    fn concurrent_accumulates_serialize_on_engine() {
        // Two workers accumulate 100 MB-wire segments: the memory bus
        // (15 GB/s, three passes per byte) serialises them at 20 ms each.
        let server = setup(2);
        let mut sim = Simulation::new();
        for i in 0..2usize {
            let s = server.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                let client = SmbClient::new(s, NodeId(i));
                let dw = client
                    .alloc(
                        &ctx,
                        client.create(&ctx, &format!("dw{i}"), 4, Some(100_000_000)).unwrap(),
                    )
                    .unwrap();
                let wg = client
                    .alloc(
                        &ctx,
                        client.create(&ctx, &format!("wg{i}"), 4, Some(100_000_000)).unwrap(),
                    )
                    .unwrap();
                client.accumulate(&ctx, &dw, &wg).unwrap();
            });
        }
        let end = sim.run();
        // Engine service: 2 x 3x100MB / 15 GB/s = 40 ms serialised, plus
        // control latencies.
        assert!(end.as_millis_f64() >= 39.9, "{}", end.as_millis_f64());
        assert!(end.as_millis_f64() < 45.0, "{}", end.as_millis_f64());
    }

    #[test]
    fn range_retrying_roundtrip_and_range_accumulate() {
        let server = setup(1);
        let s = server.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(s, NodeId(0));
            let policy = RetryPolicy::with_seed(9);
            let dw = client.alloc(&ctx, client.create(&ctx, "dw", 6, None).unwrap()).unwrap();
            let wg = client.alloc(&ctx, client.create(&ctx, "wg", 6, None).unwrap()).unwrap();
            client.write(&ctx, &wg, &[10.0; 6]).unwrap();
            // Stream ΔW in two chunks, folding each range as it lands.
            client.write_range_retrying(&ctx, &dw, 0, &[1.0, 2.0, 3.0], &policy).unwrap();
            client.accumulate_range_retrying(&ctx, &dw, &wg, 0, 3, &policy).unwrap();
            client.write_range_retrying(&ctx, &dw, 3, &[4.0, 5.0, 6.0], &policy).unwrap();
            client.accumulate_range_retrying(&ctx, &dw, &wg, 3, 3, &policy).unwrap();
            let mut out = [0.0f32; 6];
            client.read(&ctx, &wg, &mut out).unwrap();
            assert_eq!(out, [11.0, 12.0, 13.0, 14.0, 15.0, 16.0]);
            // Range reads see the folded state.
            let mut tail = [0.0f32; 2];
            client.read_range_retrying(&ctx, &wg, 4, &mut tail, &policy).unwrap();
            assert_eq!(tail, [15.0, 16.0]);
            // Out-of-bounds ranges are rejected up front.
            assert!(matches!(
                client.read_range_retrying(&ctx, &wg, 5, &mut tail, &policy),
                Err(SmbError::SizeMismatch { .. })
            ));
            assert!(matches!(
                client.write_range_retrying(&ctx, &wg, 5, &[0.0; 2], &policy),
                Err(SmbError::SizeMismatch { .. })
            ));
            assert!(matches!(
                client.accumulate_range_retrying(&ctx, &dw, &wg, 5, 2, &policy),
                Err(SmbError::SizeMismatch { .. })
            ));
        });
        sim.run();
    }

    #[test]
    fn chunked_stream_pays_the_monolithic_wire_time() {
        use shmcaffe_simnet::SimTime;
        // Reading a 100 MB-wire buffer in 8 proportional chunks must charge
        // (at least) the same wire time as one monolithic read — chunking
        // buys overlap, never a discount.
        let elems = 1_024usize;
        let read_time = |chunks: usize| -> SimTime {
            let server = setup(1);
            let s = server.clone();
            let mut sim = Simulation::new();
            sim.spawn("w", move |ctx| {
                let client = SmbClient::new(s, NodeId(0));
                let policy = RetryPolicy::with_seed(1);
                let buf = client
                    .alloc(&ctx, client.create(&ctx, "b", elems, Some(100_000_000)).unwrap())
                    .unwrap();
                let mut out = vec![0.0f32; elems];
                if chunks == 1 {
                    client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
                } else {
                    let step = elems / chunks;
                    for c in 0..chunks {
                        let lo = c * step;
                        let hi = if c + 1 == chunks { elems } else { lo + step };
                        client
                            .read_range_retrying(&ctx, &buf, lo, &mut out[lo..hi], &policy)
                            .unwrap();
                    }
                }
            });
            sim.run()
        };
        let mono = read_time(1);
        let chunked = read_time(8);
        assert!(chunked >= mono, "chunked {chunked:?} < monolithic {mono:?}");
        // Per-chunk byte rounding is the only slack: within 0.1%.
        assert!(
            chunked.as_millis_f64() <= mono.as_millis_f64() * 1.001,
            "chunked {chunked:?} vs monolithic {mono:?}"
        );
    }

    #[test]
    fn range_accumulate_engine_time_is_proportional() {
        // A half-segment range accumulate should occupy the engine for about
        // half of what the full accumulate costs.
        let run = |range: bool| {
            let server = setup(1);
            let s = server.clone();
            let mut sim = Simulation::new();
            sim.spawn("w", move |ctx| {
                let client = SmbClient::new(s, NodeId(0));
                let policy = RetryPolicy::with_seed(2);
                let dw = client
                    .alloc(&ctx, client.create(&ctx, "dw", 8, Some(100_000_000)).unwrap())
                    .unwrap();
                let wg = client
                    .alloc(&ctx, client.create(&ctx, "wg", 8, Some(100_000_000)).unwrap())
                    .unwrap();
                if range {
                    client.accumulate_range_retrying(&ctx, &dw, &wg, 0, 4, &policy).unwrap();
                } else {
                    client.accumulate_retrying(&ctx, &dw, &wg, &policy).unwrap();
                }
            });
            sim.run().as_millis_f64()
        };
        let full = run(false);
        let half = run(true);
        // Full: 3x100MB / 15 GB/s = 20 ms of engine time; half: ~10 ms.
        assert!((19.9..22.0).contains(&full), "{full}");
        assert!((9.9..12.0).contains(&half), "{half}");
    }
}
