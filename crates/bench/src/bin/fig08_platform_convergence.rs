//! Fig. 8 — Convergence (top-k accuracy and loss) of the four platforms
//! with 8 and 16 workers, on real proxy training.
//!
//! The paper trains Inception_v1 on ImageNet; we train the MLP proxy on a
//! synthetic task (DESIGN.md §1) and reproduce the *shape*: every platform
//! converges, ShmCaffe tracks the synchronous baselines closely.
//!
//! Run with
//! `cargo run --release -p shmcaffe-bench --bin fig08_platform_convergence`.

use shmcaffe_bench::convergence::ConvergenceTask;
use shmcaffe_bench::experiments::Platform;
use shmcaffe_bench::table::{pct, Table};

fn main() {
    let task = ConvergenceTask::default();
    println!("Fig 8 reproduction: platform convergence, {} total epochs\n", task.epochs);

    for workers in [8usize, 16] {
        let eval_every = (task.iters_for(workers) / 6).max(1);
        let mut table = Table::new(
            &format!("{workers} workers: held-out accuracy and loss trajectory"),
            &[
                "platform",
                "final top-1",
                "final top-2",
                "final loss",
                "trajectory (top-1 per eval)",
            ],
        );
        for platform in
            [Platform::Caffe, Platform::CaffeMpi, Platform::MpiCaffe, Platform::ShmCaffeH]
        {
            let report = task.run(platform, workers, eval_every).expect("platform runs");
            let trajectory: Vec<String> =
                report.evals.iter().map(|e| format!("{:.0}%", e.top1 * 100.0)).collect();
            let last = report.final_eval().expect("evals recorded");
            table.row_owned(vec![
                platform.name().to_string(),
                pct(last.top1 as f64),
                pct(last.topk as f64),
                format!("{:.3}", last.loss),
                trajectory.join(" "),
            ]);
        }
        table.print();
    }
    println!("paper: ShmCaffe reliably converges, slightly below Caffe, and");
    println!("slightly above Caffe-MPI / MPICaffe when scaling to 16 GPUs.");
}
