//! Property tests: collective semantics for arbitrary world shapes.

use parking_lot::Mutex;
use proptest::prelude::*;
use shmcaffe_mpi::{Comm, MpiData, MpiWorld};
use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
use shmcaffe_simnet::{SimContext, Simulation};
use std::sync::Arc;

fn run_all_ranks<F>(ranks: usize, f: F) -> Vec<Vec<f32>>
where
    F: Fn(&SimContext, &mut Comm) -> Vec<f32> + Send + Sync + 'static,
{
    let nodes = ranks.div_ceil(4).max(1);
    let world = MpiWorld::new(Fabric::new(ClusterSpec::paper_testbed(nodes)), ranks);
    let results: Arc<Mutex<Vec<Vec<f32>>>> = Arc::new(Mutex::new(vec![Vec::new(); ranks]));
    let f = Arc::new(f);
    let mut sim = Simulation::new();
    for rank in 0..ranks {
        let mut comm = world.comm(rank);
        let results = Arc::clone(&results);
        let f = Arc::clone(&f);
        sim.spawn(&format!("r{rank}"), move |ctx| {
            let out = f(&ctx, &mut comm);
            results.lock()[rank] = out;
        });
    }
    sim.run();
    let out = results.lock().clone();
    out
}

/// Deterministic per-(rank, index) value so the expected reduction is
/// computable without sharing state.
fn value(rank: usize, i: usize, seed: u32) -> f32 {
    let x = (rank as u32)
        .wrapping_mul(2654435761)
        .wrapping_add(i as u32)
        .wrapping_add(seed.wrapping_mul(97));
    ((x >> 16) as f32 / 65536.0) - 0.5
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Ring allreduce equals the element-wise sum for any world size and
    /// vector length (including lengths not divisible by the rank count).
    #[test]
    fn allreduce_equals_sum(ranks in 1usize..9, len in 1usize..40, seed in 0u32..100) {
        let got = run_all_ranks(ranks, move |ctx, comm| {
            let mine: Vec<f32> = (0..len).map(|i| value(comm.rank(), i, seed)).collect();
            comm.allreduce(ctx, mine)
        });
        let expected: Vec<f32> = (0..len)
            .map(|i| (0..ranks).map(|r| value(r, i, seed)).sum())
            .collect();
        for r in &got {
            prop_assert_eq!(r.len(), len);
            for (a, b) in r.iter().zip(expected.iter()) {
                prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
            }
        }
    }

    /// Broadcast delivers the root's exact payload to every rank, for any
    /// root.
    #[test]
    fn broadcast_from_any_root(ranks in 1usize..9, root in 0usize..9, len in 1usize..20, seed in 0u32..100) {
        let root = root % ranks;
        let got = run_all_ranks(ranks, move |ctx, comm| {
            let payload = (comm.rank() == root)
                .then(|| MpiData::F32s((0..len).map(|i| value(root, i, seed)).collect()));
            comm.broadcast(ctx, root, payload).into_f32s()
        });
        let expected: Vec<f32> = (0..len).map(|i| value(root, i, seed)).collect();
        for r in got {
            prop_assert_eq!(r, expected.clone());
        }
    }

    /// Reduce to any root equals the sum; non-roots return nothing.
    #[test]
    fn reduce_to_any_root(ranks in 1usize..9, root in 0usize..9, len in 1usize..20, seed in 0u32..100) {
        let root = root % ranks;
        let got = run_all_ranks(ranks, move |ctx, comm| {
            let mine: Vec<f32> = (0..len).map(|i| value(comm.rank(), i, seed)).collect();
            comm.reduce(ctx, root, mine).unwrap_or_default()
        });
        for (rank, r) in got.iter().enumerate() {
            if rank == root {
                for (i, v) in r.iter().enumerate() {
                    let expected: f32 = (0..ranks).map(|w| value(w, i, seed)).sum();
                    prop_assert!((v - expected).abs() < 1e-3);
                }
            } else {
                prop_assert!(r.is_empty());
            }
        }
    }

    /// gather collects each rank's contribution at the right slot.
    #[test]
    fn gather_is_indexed_by_rank(ranks in 1usize..9, root in 0usize..9) {
        let root = root % ranks;
        let got = run_all_ranks(ranks, move |ctx, comm| {
            let mine = vec![comm.rank() as f32 * 3.0];
            match comm.gather(ctx, root, mine) {
                Some(all) => all.into_iter().flatten().collect(),
                None => vec![],
            }
        });
        let expected: Vec<f32> = (0..ranks).map(|r| r as f32 * 3.0).collect();
        prop_assert_eq!(&got[root], &expected);
    }

    /// Barrier: nobody leaves before the last arrival.
    #[test]
    fn barrier_waits_for_last(ranks in 2usize..8, stagger_ms in 1u64..20) {
        let got = run_all_ranks(ranks, move |ctx, comm| {
            ctx.sleep(shmcaffe_simnet::SimDuration::from_millis(
                stagger_ms * comm.rank() as u64,
            ));
            comm.barrier(ctx);
            vec![ctx.now().as_millis_f64() as f32]
        });
        let last_arrival = (stagger_ms * (ranks as u64 - 1)) as f32;
        for r in got {
            prop_assert!(r[0] >= last_arrival, "{} < {}", r[0], last_arrival);
        }
    }
}
