//! Schedule-space model checking of the SMB control plane with the simnet
//! `schedcheck` explorer (`Simulation::explore`).
//!
//! Certification models: the fence-epoch admission handshake, the
//! promote-vs-late-primary-write interaction, tombstone GC racing a worker
//! rejoin, and the accumulate-stream guard against torn replication. Each
//! explores every tie/wake/delivery ordering within bounds and must come
//! back clean, with DPOR pruning reducing the explored count below the
//! naive one (printed, per the acceptance criteria).
//!
//! Mutation harness: the same models with a seeded bug — a heartbeat
//! missing its happens-before edge to the eviction scan, and a writer that
//! skips the fence admission check — must be *caught* within the same
//! budget, and the recorded `.sched` trace must replay the failure
//! bit-identically.

use std::path::PathBuf;

use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{ExploreBounds, ScheduleTrace, SimDuration, SimTime, Simulation};
use shmcaffe_smb::{SmbClient, SmbPair, SmbServer, SmbServerConfig};

fn sched_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("target tmpdir exists");
    dir
}

/// The models below *deliberately* put conflicting unsynchronized accesses
/// at tied wake times — that is the schedule space being explored. Under
/// `--features race-detect` the vector-clock detector would (correctly)
/// halt on them, so it collects reports instead of aborting here; the
/// race-detection contract has its own suite in `tests/race_detect.rs`.
fn tolerant(rdma: RdmaFabric) -> RdmaFabric {
    #[cfg(feature = "race-detect")]
    rdma.race_detector().set_halt_on_race(false);
    rdma
}

fn pair_fabric() -> RdmaFabric {
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) };
    tolerant(RdmaFabric::new(Fabric::new(spec)))
}

fn single_fabric() -> RdmaFabric {
    tolerant(RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(2))))
}

/// Fence-epoch admission handshake: epoch-1 writers (two on disjoint
/// segments, one overlapping) race each other and a promoter that takes
/// over once the authority lease lapses. Certified invariants, checked
/// inside the model under *every* explored schedule: the standby only ever
/// serves the replicated snapshot, and after promotion the old epoch is
/// never admitted again. The disjoint writers commute, so DPOR pruning
/// must bring the explored count under the naive one.
#[test]
fn fence_admission_handshake_certifies_clean() {
    let setup = |sim: &mut Simulation| {
        let cfg = SmbServerConfig {
            authority_timeout: SimDuration::from_millis(10),
            ..Default::default()
        };
        let pair = SmbPair::new(pair_fabric(), cfg).unwrap();
        {
            let p = pair.clone();
            sim.spawn("boot", move |ctx| {
                let client = SmbClient::with_failover(p.clone(), NodeId(0));
                let wg = client.create(&ctx, "wg", 4, None).unwrap();
                let buf = client.alloc(&ctx, wg).unwrap();
                client.write(&ctx, &buf, &[1.0; 4]).unwrap();
                client.create(&ctx, "dw0", 4, None).unwrap();
                client.create(&ctx, "dw1", 4, None).unwrap();
                p.replicate(&ctx).unwrap();
            });
        }
        // Two epoch-1 writers on *disjoint* segments: admitted (the lease
        // is live at 5 ms) and freely commuting — prunable.
        for (i, seg) in ["dw0", "dw1"].iter().enumerate() {
            let p = pair.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.sleep_until(SimTime::from_millis(5));
                let client = SmbClient::with_failover(p, NodeId(0));
                let key = client.server().lookup(seg).unwrap();
                let buf = client.alloc(&ctx, key).unwrap();
                client.write(&ctx, &buf, &[i as f32 + 2.0; 4]).unwrap();
            });
        }
        // A third writer overlapping w0's segment: does not commute, so
        // both orders of that tie are genuinely explored.
        {
            let p = pair.clone();
            sim.spawn("w2", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(5));
                let client = SmbClient::with_failover(p, NodeId(1));
                let key = client.server().lookup("dw0").unwrap();
                let buf = client.alloc(&ctx, key).unwrap();
                client.write(&ctx, &buf, &[9.0; 4]).unwrap();
            });
        }
        {
            let p = pair.clone();
            sim.spawn("promoter", move |ctx| {
                // Blocks until the lease demonstrably lapsed, then fences.
                p.promote(&ctx);
                let wg = p.standby().lookup("wg").unwrap();
                // The standby serves exactly the replicated snapshot: the
                // epoch-1 writers only ever touched the primary.
                let sc = SmbClient::new(p.standby().clone(), NodeId(0));
                let sbuf = sc.alloc(&ctx, wg).unwrap();
                let mut copy = [0.0f32; 4];
                sc.read(&ctx, &sbuf, &mut copy).unwrap();
                assert_eq!(copy, [1.0; 4], "standby must serve the replicated snapshot");
                // The old epoch is fenced out for good.
                assert!(
                    p.admit_mutation(&ctx, wg, 1).is_err(),
                    "epoch 1 must never be admitted after promotion"
                );
            });
        }
        let p = pair;
        sim.set_state_probe(move || p.state_hash());
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(64), setup);
    assert!(report.certified(), "fence admission must certify: {report:?}");
    assert!(report.pruned_independent > 0, "disjoint writers must prune: {report:?}");
    assert!(report.schedules < report.naive_schedules());
    println!(
        "schedcheck fence admission: {} explored / {} naive ({} pruned independent, {} states)",
        report.schedules,
        report.naive_schedules(),
        report.pruned_independent,
        report.distinct_states
    );
}

/// Promote-vs-late-primary-write: a writer that follows the protocol
/// (observe_fence + admit_mutation) ties with the promoter exactly at the
/// authority expiry. In every ordering the admission check rejects — the
/// lease is lapsed, so the primary self-fences even when the writer wins
/// the tie — and the demoted primary's version stays frozen.
#[test]
fn promote_vs_late_primary_write_certifies() {
    let setup = |sim: &mut Simulation| {
        let cfg = SmbServerConfig {
            authority_timeout: SimDuration::from_millis(10),
            ..Default::default()
        };
        let pair = SmbPair::new(pair_fabric(), cfg).unwrap();
        {
            let p = pair.clone();
            sim.spawn("boot", move |ctx| {
                let client = SmbClient::new(p.primary().clone(), NodeId(0));
                let wg = client.create(&ctx, "wg", 4, None).unwrap();
                let buf = client.alloc(&ctx, wg).unwrap();
                client.write(&ctx, &buf, &[1.0; 4]).unwrap();
            });
        }
        {
            let p = pair.clone();
            sim.spawn("late_writer", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(10));
                let wg = p.primary().lookup("wg").unwrap();
                let carried = 1; // the epoch this writer still believes in
                if p.admit_mutation(&ctx, wg, carried).is_ok() {
                    let client = SmbClient::new(p.primary().clone(), NodeId(0));
                    let buf = client.alloc(&ctx, wg).unwrap();
                    client.write(&ctx, &buf, &[9.0; 4]).unwrap();
                }
            });
        }
        {
            let p = pair.clone();
            sim.spawn("promoter", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(10));
                p.promote(&ctx);
                let wg = p.primary().lookup("wg").unwrap();
                let frozen = p.primary().version(wg).unwrap();
                ctx.sleep(SimDuration::from_millis(5));
                assert_eq!(
                    p.primary().version(wg).unwrap(),
                    frozen,
                    "a write landed on the demoted primary after the fence"
                );
            });
        }
        let p = pair;
        sim.set_state_probe(move || p.state_hash());
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(64), setup);
    assert!(report.certified(), "promote-vs-late-write must certify: {report:?}");
    assert!(report.schedules >= 2, "both tie orders must be explored: {report:?}");
    println!(
        "schedcheck promote-vs-late-write: {} explored / {} naive",
        report.schedules,
        report.naive_schedules()
    );
}

/// Tombstone GC racing a worker rejoin: the eviction scan that garbage
/// collects an expired tombstone ties with the lapsed owner's
/// `ack_eviction` + re-create. Both orders must converge on the same state
/// (no tombstone, segment re-created) — certified clean, and the state
/// probe confirms the schedules collapse to one distinct terminal state.
#[test]
fn tombstone_gc_vs_rejoin_certifies() {
    let setup = |sim: &mut Simulation| {
        let cfg = SmbServerConfig {
            lease_timeout: SimDuration::from_millis(2),
            tombstone_horizon: SimDuration::from_millis(5),
            ..Default::default()
        };
        let server = SmbServer::with_config(single_fabric(), cfg).unwrap();
        {
            let s = server.clone();
            sim.spawn("boot", move |ctx| {
                let client = SmbClient::new(s, NodeId(0));
                client.create_owned(&ctx, "dw", 4, None, 1).unwrap();
            });
        }
        {
            let s = server.clone();
            sim.spawn("evictor", move |ctx| {
                // First scan evicts the silent owner and plants a tombstone.
                ctx.sleep_until(SimTime::from_millis(5));
                assert_eq!(s.evict_stale(&ctx).len(), 1);
                // Second scan ties with the rejoin: it GCs the now-expired
                // tombstone if the ack has not already reaped it.
                ctx.sleep_until(SimTime::from_millis(12));
                s.evict_stale(&ctx);
            });
        }
        {
            let s = server.clone();
            sim.spawn("rejoiner", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(12));
                // The ack *arrives at the server* exactly when the GC scan
                // wakes — the interesting tie. (Going through the client
                // would add a control round trip and break the tie.)
                s.ack_eviction(&ctx, 1);
                let client = SmbClient::new(s.clone(), NodeId(0));
                client.create_owned(&ctx, "dw", 4, None, 1).unwrap();
            });
        }
        {
            let s = server.clone();
            sim.spawn("check", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(20));
                assert_eq!(s.tombstone_count(), 0, "the tombstone must be reclaimed either way");
                assert!(s.lookup("dw").is_some(), "the rejoined segment must exist");
            });
        }
        let s = server;
        sim.set_state_probe(move || s.state_hash());
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(64), setup);
    assert!(report.certified(), "tombstone GC vs rejoin must certify: {report:?}");
    assert!(report.schedules >= 2, "both tie orders must be explored: {report:?}");
    assert_eq!(report.distinct_states, 1, "orders must converge: {report:?}");
    println!(
        "schedcheck tombstone-gc-vs-rejoin: {} explored / {} naive, {} distinct states",
        report.schedules,
        report.naive_schedules(),
        report.distinct_states
    );
}

/// Accumulate-stream guard: two workers stream disjoint tiles into W_g
/// under begin/end guards while the replicator runs a pass at the same
/// virtual time. In every ordering the standby holds either the pre-stream
/// snapshot or a fully folded W_g — never a torn half-applied one.
#[test]
fn accumulate_stream_guard_certifies_untorn_standby() {
    let setup = |sim: &mut Simulation| {
        let pair = SmbPair::new(pair_fabric(), SmbServerConfig::default()).unwrap();
        {
            let p = pair.clone();
            sim.spawn("boot", move |ctx| {
                let client = SmbClient::new(p.primary().clone(), NodeId(0));
                let wg = client.create(&ctx, "wg", 4, None).unwrap();
                let buf = client.alloc(&ctx, wg).unwrap();
                client.write(&ctx, &buf, &[1.0; 4]).unwrap();
                let dw = client.create(&ctx, "dw", 4, None).unwrap();
                let dbuf = client.alloc(&ctx, dw).unwrap();
                client.write(&ctx, &dbuf, &[10.0; 4]).unwrap();
                p.replicate(&ctx).unwrap();
            });
        }
        // Each worker folds one 2-element tile, guarded as its own stream
        // (the guard is counted, so concurrent streams nest).
        for (i, offset) in [0usize, 2].iter().enumerate() {
            let p = pair.clone();
            let offset = *offset;
            sim.spawn(&format!("fold{i}"), move |ctx| {
                ctx.sleep_until(SimTime::from_millis(5));
                let server = p.primary().clone();
                let wg = server.lookup("wg").unwrap();
                let dw = server.lookup("dw").unwrap();
                server.begin_accumulate_stream(&ctx, wg);
                p.accumulate_range(&ctx, dw, wg, offset, 2).unwrap();
                server.end_accumulate_stream(&ctx, wg);
            });
        }
        {
            let p = pair.clone();
            sim.spawn("replicator", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(5));
                p.replicate(&ctx).unwrap();
                let wg = p.standby().lookup("wg").unwrap();
                let sc = SmbClient::new(p.standby().clone(), NodeId(0));
                let sbuf = sc.alloc(&ctx, wg).unwrap();
                let mut copy = [0.0f32; 4];
                sc.read(&ctx, &sbuf, &mut copy).unwrap();
                let torn = copy.contains(&1.0) && copy.contains(&11.0);
                assert!(!torn, "standby observed a torn half-folded W_g: {copy:?}");
                // A pass after the streams close ships the folded contents.
                ctx.sleep_until(SimTime::from_millis(50));
                p.replicate(&ctx).unwrap();
                sc.read(&ctx, &sbuf, &mut copy).unwrap();
                assert_eq!(copy, [11.0; 4], "post-stream pass must ship the folded W_g");
            });
        }
        let p = pair;
        sim.set_state_probe(move || p.state_hash());
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(128), setup);
    assert!(report.certified(), "stream guard must certify: {report:?}");
    assert!(report.schedules >= 2, "guard/replicate ties must be explored: {report:?}");
    assert!(report.schedules < report.naive_schedules(), "report: {report:?}");
    println!(
        "schedcheck accumulate-stream guard: {} explored / {} naive ({} pruned independent)",
        report.schedules,
        report.naive_schedules(),
        report.pruned_independent
    );
}

/// Repair racing a concurrent repair and an accumulate: page 0 of W_g is
/// poisoned, two clients race `repair_page` for it at the same virtual
/// time, and the winner's owner then folds ΔW into the repaired W_g. In
/// every ordering the repair fence keeps the loser's stale replica bytes
/// from landing over the fold: W_g always converges to the repaired-then-
/// folded value, the poison clears, and the standby keeps serving its
/// replicated snapshot.
#[test]
fn repair_vs_concurrent_accumulate_certifies() {
    let setup = |sim: &mut Simulation| {
        let cfg = SmbServerConfig { page_elems: 2, ..Default::default() };
        let pair = SmbPair::new(pair_fabric(), cfg).unwrap();
        {
            let p = pair.clone();
            sim.spawn("boot", move |ctx| {
                let client = SmbClient::new(p.primary().clone(), NodeId(0));
                let wg = client.create(&ctx, "wg", 4, None).unwrap();
                let buf = client.alloc(&ctx, wg).unwrap();
                client.write(&ctx, &buf, &[1.0; 4]).unwrap();
                let dw = client.create(&ctx, "dw", 4, None).unwrap();
                let dbuf = client.alloc(&ctx, dw).unwrap();
                client.write(&ctx, &dbuf, &[10.0; 4]).unwrap();
                p.replicate(&ctx).unwrap();
                // Flip a bit inside page 0 and let the scrubber find it.
                p.primary().inject_bit_flip(wg, 0, 3).unwrap();
                assert_eq!(p.primary().scrub_pass(&ctx), 1);
            });
        }
        {
            let p = pair.clone();
            sim.spawn("repair_then_fold", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(5));
                let wg = p.primary().lookup("wg").unwrap();
                let dw = p.primary().lookup("dw").unwrap();
                p.repair_page(&ctx, wg, 0).unwrap();
                p.accumulate_range(&ctx, dw, wg, 0, 4).unwrap();
            });
        }
        {
            let p = pair.clone();
            sim.spawn("repair_only", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(5));
                let wg = p.primary().lookup("wg").unwrap();
                p.repair_page(&ctx, wg, 0).unwrap();
            });
        }
        {
            let p = pair.clone();
            sim.spawn("check", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(50));
                let wg = p.primary().lookup("wg").unwrap();
                let client = SmbClient::new(p.primary().clone(), NodeId(0));
                let buf = client.alloc(&ctx, wg).unwrap();
                let mut copy = [0.0f32; 4];
                client.read(&ctx, &buf, &mut copy).unwrap();
                assert_eq!(copy, [11.0; 4], "W_g must be repaired-then-folded, never stale");
                assert!(p.primary().poisoned_pages(wg).is_empty(), "poison must clear");
                assert_eq!(p.primary().corruptions_detected(), 1);
                // Repair does not bump versions, so the standby still holds
                // the replicated pre-fold snapshot.
                let swg = p.standby().lookup("wg").unwrap();
                let sc = SmbClient::new(p.standby().clone(), NodeId(0));
                let sbuf = sc.alloc(&ctx, swg).unwrap();
                sc.read(&ctx, &sbuf, &mut copy).unwrap();
                assert_eq!(copy, [1.0; 4], "standby serves the replicated snapshot");
            });
        }
        let p = pair;
        sim.set_state_probe(move || p.state_hash());
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(128), setup);
    assert!(report.certified(), "repair-vs-accumulate must certify: {report:?}");
    assert!(report.schedules >= 2, "the repair ties must be explored: {report:?}");
    println!(
        "schedcheck repair-vs-accumulate: {} explored / {} naive ({} pruned independent)",
        report.schedules,
        report.naive_schedules(),
        report.pruned_independent
    );
}

/// Seeded missing-HB-edge mutation: the worker heartbeats exactly *at* the
/// eviction scan's wake time instead of strictly before it, so nothing
/// orders the heartbeat before the scan. The default (pid-order) schedule
/// happens to run the heartbeat first and passes; the explorer must find
/// the reordering where the scan wins the tie and evicts the segment, and
/// the `.sched` trace must replay it bit-identically.
#[test]
fn mutated_heartbeat_without_hb_edge_is_caught() {
    let model = |mutated: bool| {
        move |sim: &mut Simulation| {
            let cfg = SmbServerConfig {
                lease_timeout: SimDuration::from_millis(5),
                ..Default::default()
            };
            let server = SmbServer::with_config(single_fabric(), cfg).unwrap();
            {
                let s = server.clone();
                sim.spawn("boot", move |ctx| {
                    let client = SmbClient::new(s, NodeId(0));
                    client.create_owned(&ctx, "dw", 4, None, 1).unwrap();
                });
            }
            {
                let s = server.clone();
                // Spawned before the evictor: the default tie order runs the
                // worker first, masking the missing edge.
                sim.spawn("worker", move |ctx| {
                    // Correct: renew strictly inside the lease window.
                    // Mutated: renew at the scan's exact wake time — no
                    // happens-before edge orders it before the scan.
                    let at = if mutated { 10 } else { 4 };
                    ctx.sleep_until(SimTime::from_millis(at));
                    s.touch_owner(&ctx, 1);
                    assert!(
                        s.lookup("dw").is_some(),
                        "missing-HB edge: the eviction scan raced the heartbeat"
                    );
                });
            }
            {
                let s = server.clone();
                sim.spawn("evictor", move |ctx| {
                    ctx.sleep_until(SimTime::from_millis(10));
                    s.evict_stale(&ctx);
                });
            }
            let s = server;
            sim.set_state_probe(move || s.state_hash());
        }
    };

    // The correct protocol certifies clean.
    let clean = Simulation::explore(&ExploreBounds::exhaustive(64), model(false));
    assert!(clean.certified(), "in-window heartbeat must certify: {clean:?}");

    // The mutated one is caught, on a non-default schedule.
    let trace_path = sched_dir().join("missing_hb.sched");
    let bounds =
        ExploreBounds { trace_path: Some(trace_path.clone()), ..ExploreBounds::exhaustive(64) };
    let failure = Simulation::explore(&bounds, model(true))
        .failure
        .expect("the heartbeat/eviction race must be found");
    assert!(failure.message.contains("missing-HB edge"), "got: {}", failure.message);
    assert!(
        failure.trace.entries.iter().any(|e| e.chosen != 0),
        "the failure must need a non-default schedule: {:?}",
        failure.trace
    );
    let loaded = ScheduleTrace::load(&trace_path).expect("trace file parses");
    assert_eq!(loaded, failure.trace);
    for _ in 0..2 {
        let replay = Simulation::replay(&loaded, model(true));
        assert_eq!(replay.result.as_ref().err(), Some(&failure.message));
        assert_eq!(replay.state_hash, failure.state_hash);
    }
    println!("schedcheck mutation missing-HB: caught with trace {:?}", failure.trace);
}

/// Seeded fence-check-skip mutation: the late writer bypasses
/// `admit_mutation` and writes straight to the demoted primary. The
/// promoter's frozen-version assertion must catch it within budget, and
/// the recorded trace must replay bit-identically. The protocol-following
/// variant of the same model certifies clean.
#[test]
fn mutated_fence_check_skip_is_caught() {
    let model = |mutated: bool| {
        move |sim: &mut Simulation| {
            let cfg = SmbServerConfig {
                authority_timeout: SimDuration::from_millis(10),
                ..Default::default()
            };
            let pair = SmbPair::new(pair_fabric(), cfg).unwrap();
            {
                let p = pair.clone();
                sim.spawn("boot", move |ctx| {
                    let client = SmbClient::new(p.primary().clone(), NodeId(0));
                    let wg = client.create(&ctx, "wg", 4, None).unwrap();
                    let buf = client.alloc(&ctx, wg).unwrap();
                    client.write(&ctx, &buf, &[1.0; 4]).unwrap();
                });
            }
            {
                let p = pair.clone();
                sim.spawn("late_writer", move |ctx| {
                    ctx.sleep_until(SimTime::from_millis(10));
                    let wg = p.primary().lookup("wg").unwrap();
                    // Correct: check the fence first (rejected — the lease
                    // lapsed). Mutated: skip the check and write anyway.
                    if !mutated && p.admit_mutation(&ctx, wg, 1).is_err() {
                        return;
                    }
                    let client = SmbClient::new(p.primary().clone(), NodeId(0));
                    let buf = client.alloc(&ctx, wg).unwrap();
                    client.write(&ctx, &buf, &[9.0; 4]).unwrap();
                });
            }
            {
                let p = pair.clone();
                sim.spawn("promoter", move |ctx| {
                    ctx.sleep_until(SimTime::from_millis(10));
                    p.promote(&ctx);
                    let wg = p.primary().lookup("wg").unwrap();
                    let frozen = p.primary().version(wg).unwrap();
                    ctx.sleep(SimDuration::from_millis(5));
                    assert_eq!(
                        p.primary().version(wg).unwrap(),
                        frozen,
                        "fence-check skip: a post-fence write landed on the demoted primary"
                    );
                });
            }
            let p = pair;
            sim.set_state_probe(move || p.state_hash());
        }
    };

    let clean = Simulation::explore(&ExploreBounds::exhaustive(64), model(false));
    assert!(clean.certified(), "the fence-checked variant must certify: {clean:?}");

    let trace_path = sched_dir().join("fence_skip.sched");
    let bounds =
        ExploreBounds { trace_path: Some(trace_path.clone()), ..ExploreBounds::exhaustive(64) };
    let failure = Simulation::explore(&bounds, model(true))
        .failure
        .expect("the fence-check skip must be found");
    assert!(failure.message.contains("fence-check skip"), "got: {}", failure.message);
    let loaded = ScheduleTrace::load(&trace_path).expect("trace file parses");
    assert_eq!(loaded, failure.trace);
    for _ in 0..2 {
        let replay = Simulation::replay(&loaded, model(true));
        assert_eq!(replay.result.as_ref().err(), Some(&failure.message));
        assert_eq!(replay.state_hash, failure.state_hash);
    }
    println!("schedcheck mutation fence-skip: caught with trace {:?}", failure.trace);
}

/// Seeded repair-fence removal: two clients race `repair_page` for the
/// same poisoned page with pages big enough that the repair transfer is
/// wire-time-dominated, so the loser's transfer is still in flight when
/// the winner has installed *and* its owner has folded ΔW into the
/// repaired page. With the fence intact the loser re-checks the poison
/// after its transfer and skips; with it disabled
/// (`set_repair_fence(false)`) the stale replica bytes land over the fold
/// — a silent lost update with a *valid* CRC that no read can ever flag.
/// The explorer must catch the mutant (the fenced variant of the same
/// model certifies clean across every schedule), and the `.sched` trace
/// must replay the failure bit-identically.
#[test]
fn mutated_repair_without_fence_is_caught() {
    const PE: usize = 65536; // 256 KiB pages: repair wire time >> path latency
    const N: usize = 2 * PE;
    let model = |mutated: bool| {
        move |sim: &mut Simulation| {
            let cfg = SmbServerConfig { page_elems: PE, ..Default::default() };
            let pair = SmbPair::new(pair_fabric(), cfg).unwrap();
            if mutated {
                pair.set_repair_fence(false);
            }
            {
                let p = pair.clone();
                sim.spawn("boot", move |ctx| {
                    let client = SmbClient::new(p.primary().clone(), NodeId(0));
                    let wg = client.create(&ctx, "wg", N, None).unwrap();
                    let buf = client.alloc(&ctx, wg).unwrap();
                    client.write(&ctx, &buf, &vec![1.0; N]).unwrap();
                    let dw = client.create(&ctx, "dw", N, None).unwrap();
                    let dbuf = client.alloc(&ctx, dw).unwrap();
                    client.write(&ctx, &dbuf, &vec![10.0; N]).unwrap();
                    p.replicate(&ctx).unwrap();
                    p.primary().inject_bit_flip(wg, 1, 12).unwrap();
                    assert_eq!(p.primary().scrub_pass(&ctx), 1);
                });
            }
            {
                let p = pair.clone();
                sim.spawn("repair_then_fold", move |ctx| {
                    ctx.sleep_until(SimTime::from_millis(20));
                    let wg = p.primary().lookup("wg").unwrap();
                    let dw = p.primary().lookup("dw").unwrap();
                    p.repair_page(&ctx, wg, 0).unwrap();
                    p.accumulate_range(&ctx, dw, wg, 0, 4).unwrap();
                });
            }
            {
                let p = pair.clone();
                sim.spawn("late_repair", move |ctx| {
                    // Starts mid-flight of the first repair: sees the poison
                    // (the install is ~150 µs of wire time away), transfers,
                    // and completes only after the winner's fold landed.
                    ctx.sleep_until(SimTime::from_millis(20));
                    ctx.sleep(SimDuration::from_micros(20));
                    let wg = p.primary().lookup("wg").unwrap();
                    p.repair_page(&ctx, wg, 0).unwrap();
                });
            }
            {
                let p = pair.clone();
                sim.spawn("check", move |ctx| {
                    ctx.sleep_until(SimTime::from_millis(50));
                    let wg = p.primary().lookup("wg").unwrap();
                    let client = SmbClient::new(p.primary().clone(), NodeId(0));
                    let buf = client.alloc(&ctx, wg).unwrap();
                    let mut copy = [0.0f32; 4];
                    client.read_range(&ctx, &buf, 0, &mut copy).unwrap();
                    assert_eq!(
                        copy, [11.0; 4],
                        "repair-fence: stale replica bytes landed over the fold"
                    );
                });
            }
            let p = pair;
            sim.set_state_probe(move || p.state_hash());
        }
    };

    // With the fence intact the same overlap certifies clean.
    let clean = Simulation::explore(&ExploreBounds::exhaustive(128), model(false));
    assert!(clean.certified(), "the fenced repair must certify: {clean:?}");

    let trace_path = sched_dir().join("repair_fence.sched");
    let bounds =
        ExploreBounds { trace_path: Some(trace_path.clone()), ..ExploreBounds::exhaustive(128) };
    let failure = Simulation::explore(&bounds, model(true))
        .failure
        .expect("the unfenced repair lost-update must be found");
    assert!(failure.message.contains("repair-fence"), "got: {}", failure.message);
    let loaded = ScheduleTrace::load(&trace_path).expect("trace file parses");
    assert_eq!(loaded, failure.trace);
    for _ in 0..2 {
        let replay = Simulation::replay(&loaded, model(true));
        assert_eq!(replay.result.as_ref().err(), Some(&failure.message));
        assert_eq!(replay.state_hash, failure.state_hash);
    }
    println!("schedcheck mutation repair-fence: caught with trace {:?}", failure.trace);
}
