//! Bandwidth-limited FIFO resources: links, buses and service engines.
//!
//! A [`BandwidthResource`] models a store-and-forward pipe: transfers are
//! serviced in virtual-time arrival order, each occupying the pipe for
//! `bytes / bandwidth`. Contention therefore emerges as queueing delay.
//! This single abstraction models the paper's InfiniBand HCAs (7 GB/s), the
//! switch backplane, per-node PCIe buses (~12 GB/s) and the SMB server's
//! accumulate engine.

use parking_lot::Mutex;
use std::sync::Arc;

use crate::{SimContext, SimDuration, SimTime};

/// Static parameters of a link: bandwidth and propagation latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// One-way propagation latency added after the transfer completes.
    pub latency: SimDuration,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn new(bandwidth_bps: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_bps.is_finite() && bandwidth_bps > 0.0, "bandwidth must be positive");
        LinkModel { bandwidth_bps, latency }
    }

    /// Pure service time of `bytes` at this link's bandwidth (no latency).
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }
}

#[derive(Debug, Default)]
struct ResourceState {
    busy_until: SimTime,
    total_bytes: u64,
    total_busy: SimDuration,
    transfers: u64,
}

/// A FIFO bandwidth resource shared by simulated processes.
///
/// Cloning returns another handle to the same resource.
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::{Simulation, SimDuration};
/// use shmcaffe_simnet::resource::{BandwidthResource, LinkModel};
///
/// let mut sim = Simulation::new();
/// let bus = BandwidthResource::new("pcie", LinkModel::new(12e9, SimDuration::ZERO));
/// for i in 0..2 {
///     let bus = bus.clone();
///     sim.spawn(&format!("gpu{i}"), move |ctx| {
///         bus.transfer(&ctx, 12_000_000_000); // 1 s of service each
///     });
/// }
/// let end = sim.run();
/// // Two 1-second transfers serialised on the shared bus.
/// assert_eq!(end.as_secs_f64().round(), 2.0);
/// ```
#[derive(Clone)]
pub struct BandwidthResource {
    name: Arc<str>,
    model: LinkModel,
    state: Arc<Mutex<ResourceState>>,
}

impl std::fmt::Debug for BandwidthResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BandwidthResource")
            .field("name", &self.name)
            .field("model", &self.model)
            .finish()
    }
}

/// Timing of one completed transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReport {
    /// When the transfer began occupying the resource.
    pub start: SimTime,
    /// When the last byte left the resource (latency not included).
    pub end: SimTime,
}

impl TransferReport {
    /// Queueing + service duration (excludes propagation latency).
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

impl BandwidthResource {
    /// Creates a resource with the given model.
    pub fn new(name: &str, model: LinkModel) -> Self {
        BandwidthResource {
            name: name.into(),
            model,
            state: Arc::new(Mutex::new(ResourceState::default())),
        }
    }

    /// The resource's link model.
    pub fn model(&self) -> LinkModel {
        self.model
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Moves `bytes` through the resource, blocking in virtual time for
    /// queueing, service and propagation latency.
    pub fn transfer(&self, ctx: &SimContext, bytes: u64) -> TransferReport {
        self.transfer_stream(ctx, bytes, None)
    }

    /// [`BandwidthResource::transfer`] with an optional per-stream pacing
    /// limit in bytes/s.
    ///
    /// The *link* is occupied for `bytes / link_bw` (so concurrent streams
    /// still aggregate to the link rate), but the requester does not
    /// complete before `start + bytes / stream_bps`. This models protocol
    /// stacks whose single connection cannot saturate the wire — e.g. the
    /// SMB server's RDS-derived transport, whose aggregate bandwidth grows
    /// with the process count (paper Fig. 7).
    ///
    /// # Panics
    ///
    /// Panics if `stream_bps` is non-positive.
    pub fn transfer_stream(
        &self,
        ctx: &SimContext,
        bytes: u64,
        stream_bps: Option<f64>,
    ) -> TransferReport {
        let now = ctx.now();
        let (start, end) = {
            let mut st = self.state.lock();
            let start = now.max(st.busy_until);
            let service = self.model.service_time(bytes);
            let end = start + service;
            st.busy_until = end;
            st.total_bytes += bytes;
            st.total_busy += service;
            st.transfers += 1;
            (start, end)
        };
        let complete = match stream_bps {
            Some(bps) => {
                assert!(bps > 0.0, "stream_bps must be positive");
                // Paced streams flow concurrently: completion is governed by
                // the stream's own rate from *arrival*, or by aggregate link
                // saturation (the accumulated service backlog), whichever is
                // later.
                end.max(now + SimDuration::from_secs_f64(bytes as f64 / bps))
            }
            None => end,
        };
        ctx.sleep_until(complete + self.model.latency);
        TransferReport { start, end: complete }
    }

    /// Reserves the resource without transferring bytes (control messages,
    /// fixed-cost operations). Blocks for queueing + `service` + latency.
    pub fn occupy(&self, ctx: &SimContext, service: SimDuration) -> TransferReport {
        let now = ctx.now();
        let (start, end) = {
            let mut st = self.state.lock();
            let start = now.max(st.busy_until);
            let end = start + service;
            st.busy_until = end;
            st.total_busy += service;
            st.transfers += 1;
            (start, end)
        };
        ctx.sleep_until(end + self.model.latency);
        TransferReport { start, end }
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().total_bytes
    }

    /// Total busy (service) time accumulated so far.
    pub fn total_busy(&self) -> SimDuration {
        self.state.lock().total_busy
    }

    /// Number of transfers serviced so far.
    pub fn transfer_count(&self) -> u64 {
        self.state.lock().transfers
    }

    /// Utilisation over `[0, horizon]`: busy time divided by the horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.total_busy().as_secs_f64() / horizon.as_secs_f64()
    }
}

/// Moves `bytes` through a chain of resources as one cut-through transfer.
///
/// The transfer starts when every resource is free, proceeds at the minimum
/// bandwidth along the chain, and occupies all resources until it completes.
/// The maximum per-hop latency is added once. This models an end-to-end path
/// (source HCA → switch → destination HCA) without simulating per-packet
/// pipelining.
///
/// # Panics
///
/// Panics if `path` is empty.
pub fn transfer_path(ctx: &SimContext, path: &[&BandwidthResource], bytes: u64) -> TransferReport {
    transfer_path_stream(ctx, path, bytes, None)
}

/// [`transfer_path`] with an optional per-stream pacing limit in bytes/s
/// (see [`BandwidthResource::transfer_stream`]).
///
/// # Panics
///
/// Panics if `path` is empty or `stream_bps` is non-positive.
pub fn transfer_path_stream(
    ctx: &SimContext,
    path: &[&BandwidthResource],
    bytes: u64,
    stream_bps: Option<f64>,
) -> TransferReport {
    assert!(!path.is_empty(), "transfer path must contain at least one resource");
    let now = ctx.now();
    let min_bw = path.iter().map(|r| r.model.bandwidth_bps).fold(f64::INFINITY, f64::min);
    let service = SimDuration::from_secs_f64(bytes as f64 / min_bw);
    let max_latency = path.iter().map(|r| r.model.latency).max().unwrap_or(SimDuration::ZERO);

    // Only one simulated process executes at a time, so locking resources
    // sequentially cannot deadlock or race. A shared (half-duplex) resource
    // may appear twice in the path; dedup by state pointer so its
    // occupancy is charged once.
    let mut start = now;
    for r in path {
        start = start.max(r.state.lock().busy_until);
    }
    let end = start + service;
    let mut seen: Vec<*const Mutex<ResourceState>> = Vec::with_capacity(path.len());
    for r in path {
        let ptr = Arc::as_ptr(&r.state);
        if seen.contains(&ptr) {
            continue;
        }
        seen.push(ptr);
        let mut st = r.state.lock();
        st.busy_until = end;
        st.total_bytes += bytes;
        st.total_busy += service;
        st.transfers += 1;
    }
    let complete = match stream_bps {
        Some(bps) => {
            assert!(bps > 0.0, "stream_bps must be positive");
            // See `BandwidthResource::transfer_stream`: paced streams flow
            // concurrently, bounded by arrival-relative pacing or backlog.
            end.max(now + SimDuration::from_secs_f64(bytes as f64 / bps))
        }
        None => end,
    };
    ctx.sleep_until(complete + max_latency);
    TransferReport { start, end: complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use parking_lot::Mutex as PMutex;

    fn gbps(n: f64) -> LinkModel {
        LinkModel::new(n * 1e9, SimDuration::ZERO)
    }

    #[test]
    fn single_transfer_takes_bytes_over_bandwidth() {
        let mut sim = Simulation::new();
        let link = BandwidthResource::new("l", LinkModel::new(1e9, SimDuration::from_micros(5)));
        let l = link.clone();
        sim.spawn("p", move |ctx| {
            let rep = l.transfer(&ctx, 500_000_000);
            assert_eq!(rep.duration().as_secs_f64(), 0.5);
            // 0.5 s service + 5 us latency.
            assert_eq!(ctx.now().as_nanos(), 500_000_000 + 5_000);
        });
        sim.run();
    }

    #[test]
    fn concurrent_transfers_serialize_fifo() {
        let mut sim = Simulation::new();
        let link = BandwidthResource::new("l", gbps(1.0));
        let order = std::sync::Arc::new(PMutex::new(Vec::new()));
        for i in 0..4u64 {
            let l = link.clone();
            let order = std::sync::Arc::clone(&order);
            sim.spawn(&format!("p{i}"), move |ctx| {
                let rep = l.transfer(&ctx, 100_000_000); // 100 ms each
                order.lock().push((i, rep.start.as_millis_f64(), rep.end.as_millis_f64()));
            });
        }
        let end = sim.run();
        assert_eq!(end.as_millis_f64(), 400.0);
        let order = order.lock().clone();
        // Starts at 0, 100, 200, 300 in spawn order.
        for (idx, (i, start, end)) in order.iter().enumerate() {
            assert_eq!(*i as usize, idx);
            assert_eq!(*start, 100.0 * idx as f64);
            assert_eq!(*end, 100.0 * (idx + 1) as f64);
        }
    }

    #[test]
    fn aggregate_bandwidth_is_capped_at_link_rate() {
        // N processes each push 100 MB through a 7 GB/s link; aggregate
        // throughput must equal the link rate, not N times it.
        let mut sim = Simulation::new();
        let link = BandwidthResource::new("hca", gbps(7.0));
        let n = 8u64;
        let per_proc = 100_000_000u64;
        for i in 0..n {
            let l = link.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                l.transfer(&ctx, per_proc);
            });
        }
        let end = sim.run();
        let aggregate = (n * per_proc) as f64 / end.as_secs_f64();
        assert!((aggregate - 7e9).abs() / 7e9 < 1e-6, "aggregate {aggregate}");
    }

    #[test]
    fn occupy_reserves_fixed_service_time() {
        let mut sim = Simulation::new();
        let engine = BandwidthResource::new("accum", gbps(10.0));
        let e = engine.clone();
        sim.spawn("p", move |ctx| {
            e.occupy(&ctx, SimDuration::from_millis(3));
            assert_eq!(ctx.now().as_millis_f64(), 3.0);
        });
        sim.run();
        assert_eq!(engine.transfer_count(), 1);
    }

    #[test]
    fn path_transfer_bottlenecked_by_slowest_hop() {
        let mut sim = Simulation::new();
        let fast = BandwidthResource::new("fast", gbps(10.0));
        let slow = BandwidthResource::new("slow", gbps(1.0));
        let (f, s) = (fast.clone(), slow.clone());
        sim.spawn("p", move |ctx| {
            let rep = transfer_path(&ctx, &[&f, &s], 1_000_000_000);
            assert_eq!(rep.duration().as_secs_f64(), 1.0);
        });
        sim.run();
        // Both hops were occupied for the full transfer.
        assert_eq!(fast.total_busy().as_secs_f64(), 1.0);
        assert_eq!(slow.total_busy().as_secs_f64(), 1.0);
    }

    #[test]
    fn utilization_accounting() {
        let mut sim = Simulation::new();
        let link = BandwidthResource::new("l", gbps(1.0));
        let l = link.clone();
        sim.spawn("p", move |ctx| {
            l.transfer(&ctx, 250_000_000);
            ctx.sleep(SimDuration::from_millis(750));
        });
        let end = sim.run();
        assert_eq!(end.as_secs_f64(), 1.0);
        assert!((link.utilization(end) - 0.25).abs() < 1e-9);
        assert_eq!(link.total_bytes(), 250_000_000);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        LinkModel::new(0.0, SimDuration::ZERO);
    }

    #[test]
    fn stream_cap_limits_single_transfer() {
        // 7 GB/s link, 1.75 GB/s stream: 1 GB takes 571 ms for the
        // requester but occupies the link for only 143 ms.
        let mut sim = Simulation::new();
        let link = BandwidthResource::new("l", gbps(7.0));
        let l = link.clone();
        sim.spawn("p", move |ctx| {
            l.transfer_stream(&ctx, 1_000_000_000, Some(1.75e9));
            assert!((ctx.now().as_secs_f64() - 1.0 / 1.75).abs() < 1e-3);
        });
        sim.run();
        assert!((link.total_busy().as_secs_f64() - 1.0 / 7.0).abs() < 1e-3);
    }

    #[test]
    fn concurrent_capped_streams_aggregate_toward_link_rate() {
        // Aggregate bandwidth rises with the process count until the link
        // saturates — the shape of the paper's Fig. 7.
        let aggregate = |procs: usize| -> f64 {
            let mut sim = Simulation::new();
            let link = BandwidthResource::new("l", gbps(7.0));
            let per_proc = 1_000_000_000u64;
            for i in 0..procs {
                let l = link.clone();
                sim.spawn(&format!("p{i}"), move |ctx| {
                    l.transfer_stream(&ctx, per_proc, Some(1.75e9));
                });
            }
            let end = sim.run();
            (procs as u64 * per_proc) as f64 / end.as_secs_f64()
        };
        let a2 = aggregate(2);
        let a8 = aggregate(8);
        let a16 = aggregate(16);
        assert!((a2 - 3.5e9).abs() < 0.2e9, "2 procs: {a2}");
        assert!(a8 > 6.0e9, "8 procs: {a8}");
        assert!(a16 <= 7.0e9 + 1.0 && a16 > 6.5e9, "16 procs: {a16}");
        assert!(a2 < a8 && a8 <= a16 + 0.5e9);
    }

    #[test]
    fn path_with_duplicate_resource_charges_once() {
        // A half-duplex endpoint appears as both tx and rx.
        let mut sim = Simulation::new();
        let shared = BandwidthResource::new("hd", gbps(1.0));
        let s1 = shared.clone();
        let s2 = shared.clone();
        sim.spawn("p", move |ctx| {
            transfer_path(&ctx, &[&s1, &s2], 1_000_000_000);
        });
        let end = sim.run();
        assert_eq!(end.as_secs_f64(), 1.0);
        assert_eq!(shared.total_bytes(), 1_000_000_000);
        assert_eq!(shared.transfer_count(), 1);
    }
}
