//! Figs. 12–13 + Table V — ShmCaffe-A computation and communication time
//! per iteration for the four CNN models at 1/2/4/8/16 workers.
//!
//! Paper anchors: Inception_v1 comm ratio 16.3% @8 → 26% @16; ResNet_50
//! 30% @8 → 56% @16; Inception-ResNet-v2's comm "increases rapidly" (the
//! per-iteration volume at 16 workers is 6848 MB = 214 MB × 2 × 16); VGG16
//! at 2 GPUs already spends 727.7 ms communicating out of 941.8 ms.
//!
//! Run with
//! `cargo run --release -p shmcaffe-bench --bin fig12_table5_shmcaffe_a`.

use shmcaffe_bench::experiments::{measure, Breakdown, Platform, DEFAULT_MEASURE_ITERS};
use shmcaffe_bench::table::{ms, pct, Table};
use shmcaffe_models::CnnModel;

fn main() {
    let worker_counts = [1usize, 2, 4, 8, 16];
    println!("Table V / Figs 12-13 reproduction: ShmCaffe-A per-iteration breakdown\n");

    for model in CnnModel::ALL {
        let mut table = Table::new(
            &format!(
                "{model} (params {} MB, 1-GPU comp {:.1} ms)",
                model.param_bytes() / 1_000_000,
                model.comp_time().as_millis_f64()
            ),
            &["workers", "comp (ms)", "comm (ms)", "comm ratio"],
        );
        for &workers in &worker_counts {
            let report = measure(Platform::ShmCaffeA, model, workers, DEFAULT_MEASURE_ITERS, 42)
                .expect("platform runs");
            let b = Breakdown::from_report("", &report);
            table.row_owned(vec![
                workers.to_string(),
                ms(b.comp_ms),
                ms(b.comm_ms),
                pct(b.comm_ratio()),
            ]);
        }
        table.print();
    }
    println!("paper anchors: Incept_v1 16.3%@8 / 26%@16; ResNet_50 30%@8 / 56%@16;");
    println!("Incept_resnet_v2 rises rapidly toward ~65%@16; VGG16 comm-dominated from 2 GPUs.");
}
