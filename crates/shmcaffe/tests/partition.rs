//! Split-brain chaos test: a network partition isolates the primary
//! memory server (and the workers on its side) from the standby — with no
//! crash anywhere — and the platform must stay consistent.
//!
//! The seeded plan severs `[[node 0, primary], [node 1, standby]]` from
//! t = 120 ms until t = 280 ms. Replication passes start failing at
//! 120 ms, so the primary's authority lease (60 ms) lapses at ~180 ms and
//! the primary self-fences: every write still carrying the old epoch is
//! rejected with `FencedEpoch` — zero mutations are accepted at a stale
//! epoch. The majority side promotes the standby once the lease has
//! demonstrably expired and finishes its budget there. The minority
//! workers ride the outage in degraded mode — buffering increments up to
//! the staleness cap, dropping beyond it with accounting — and replay the
//! backlog after the heal, while the demoted primary reconciles by
//! discarding its divergent unreplicated segments and resyncing from the
//! promoted standby's journal. Final loss must stay within 10% of a
//! fault-free run and the whole timeline must be bit-identical across
//! reruns (`scripts/check.sh` runs this suite under `SHMCAFFE_THREADS=1`
//! and `4`, and again under `--features race-detect`).

use shmcaffe::platforms::ShmCaffeA;
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe::{ShmCaffeConfig, TrainingReport};
use shmcaffe_models::WorkloadModel;
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, NodeId};
use shmcaffe_simnet::{SimDuration, SimTime};
use shmcaffe_smb::SmbServerConfig;

const N_WORKERS: usize = 8;
const MAX_ITERS: usize = 30;

/// Two GPU nodes (ranks 0–3 on node 0, ranks 4–7 on node 1) plus a
/// replicated memory-server pair (primary on node 2, standby on node 3).
fn spec() -> ClusterSpec {
    ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(2) }
}

fn primary_node() -> NodeId {
    NodeId(spec().gpu_nodes)
}

fn standby_node() -> NodeId {
    NodeId(spec().gpu_nodes + 1)
}

fn factory() -> ModeledTrainerFactory {
    let workload = WorkloadModel::custom("partition", 1_000_000, SimDuration::from_millis(10));
    ModeledTrainerFactory::new(workload, JitterModel::NONE, 7)
}

fn cfg() -> ShmCaffeConfig {
    ShmCaffeConfig {
        max_iters: MAX_ITERS,
        progress_every: 10,
        partition_staleness_cap: 1,
        jitter: JitterModel::NONE,
        ..Default::default()
    }
}

/// The partition splits worker node 0 off with the soon-to-be-stale
/// primary; worker node 1 keeps the standby. Nobody crashes.
fn partition_plan() -> FaultPlan {
    FaultPlan::new(11).partition(
        vec![vec![NodeId(0), primary_node()], vec![NodeId(1), standby_node()]],
        SimTime::from_millis(120),
        Some(SimTime::from_millis(280)),
    )
}

/// Authority lease far above the 20 ms replication interval but short
/// enough to lapse well inside the partition window.
fn fast_fencing() -> SmbServerConfig {
    SmbServerConfig { authority_timeout: SimDuration::from_millis(60), ..Default::default() }
}

fn platform() -> ShmCaffeA {
    ShmCaffeA::new(spec(), N_WORKERS, cfg())
        .with_server_config(fast_fencing())
        .with_standby(SimDuration::from_millis(20))
}

fn run_partitioned() -> TrainingReport {
    platform()
        .with_fault_plan(partition_plan())
        .run(factory())
        .expect("fenced platform survives a split-brain partition")
}

#[test]
fn split_brain_partition_fences_stale_primary_and_reconciles() {
    let faulted = run_partitioned();
    let clean = platform().run(factory()).expect("fault-free run");

    // Nobody crashed and every worker — both sides of the partition —
    // completed its full budget.
    assert_eq!(faulted.crashed_workers(), 0);
    for w in &faulted.workers {
        assert_eq!(w.iters, MAX_ITERS as u64, "rank {} shortchanged", w.rank);
    }

    // The partition was observed as a fault, not silently missed.
    assert!(faulted.total_faults() > 0, "someone must have hit the severed links");

    // Split-brain prevention: at least one write reached the stale-lease
    // primary and was rejected — and every server-side rejection is
    // accounted for by a worker client observing `FencedEpoch`, i.e. zero
    // writes were silently accepted (or lost) at a stale epoch.
    assert!(faulted.fenced_rejections >= 1, "the expired primary must fence stale writes");
    assert_eq!(
        faulted.fenced_rejections,
        faulted.total_fenced_writes(),
        "every fencing rejection must surface at exactly one client"
    );

    // Degraded mode on the isolated side: increments were buffered while
    // the server was unreachable, the staleness cap dropped the excess
    // with accounting, and the backlog was replayed after the heal.
    assert!(faulted.total_partition_buffered() >= 1, "minority must buffer increments");
    assert!(faulted.total_partition_dropped() >= 1, "staleness cap of 1 must drop something");
    assert!(faulted.total_reconciled_updates() >= 1, "healed workers must replay the backlog");
    assert!(
        faulted.total_reconciled_updates() <= faulted.total_partition_buffered(),
        "cannot replay more than was buffered"
    );

    // Partition-heal reconciliation: the demoted primary diverged while
    // its minority kept writing inside the lease grace window, so it must
    // discard those unreplicated segments and resync them from the
    // promoted standby.
    assert!(faulted.reconcile_discarded >= 1, "divergent segments must be discarded");
    assert!(faulted.reconcile_resynced >= 1, "discarded segments must be resynced");

    // The collector recovered the final model from the promoted standby.
    assert!(faulted.final_weights.is_some());

    // Convergence is preserved: a bounded number of lost/stale increments
    // must not move the final loss by more than 10% on any rank.
    for (f, c) in faulted.workers.iter().zip(clean.workers.iter()) {
        let rel = ((f.final_loss - c.final_loss) / c.final_loss).abs();
        assert!(
            rel < 0.10,
            "rank {}: partitioned loss {} vs clean {} ({:.1}% off)",
            f.rank,
            f.final_loss,
            c.final_loss,
            rel * 100.0
        );
    }

    // The clean run exercises none of the partition machinery.
    assert_eq!(clean.fenced_rejections, 0);
    assert_eq!(clean.total_partition_buffered(), 0);
    assert_eq!(clean.reconcile_discarded, 0);
}

#[test]
fn partition_runs_are_bit_identical_given_the_seed() {
    let a = run_partitioned();
    let b = run_partitioned();
    assert_eq!(a.wall, b.wall);
    assert_eq!(a.fenced_rejections, b.fenced_rejections);
    assert_eq!(a.reconcile_discarded, b.reconcile_discarded);
    assert_eq!(a.reconcile_resynced, b.reconcile_resynced);
    for (x, y) in a.workers.iter().zip(b.workers.iter()) {
        assert_eq!(x.iters, y.iters);
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.final_loss, y.final_loss);
        assert_eq!(x.faults, y.faults);
        assert_eq!(x.retries, y.retries);
        assert_eq!(x.fenced_writes, y.fenced_writes);
        assert_eq!(x.partition_buffered, y.partition_buffered);
        assert_eq!(x.partition_dropped, y.partition_dropped);
        assert_eq!(x.reconciled_updates, y.reconciled_updates);
        assert_eq!(x.dropped_updates, y.dropped_updates);
    }
}
