//! Primary/standby SMB server pair with asynchronous replication.
//!
//! The paper hangs the whole platform off one dedicated memory server; this
//! module removes that single point of failure. An [`SmbPair`] runs the
//! regular server on the first memory endpoint (primary) and a mirror on
//! the second (standby). A background *replicator* process periodically
//! ships a journal of segment metadata plus the changed segment contents,
//! the lease table and the eviction tombstones to the standby. Each
//! completed pass bumps the pair's replication **epoch**; the wire time is
//! charged across both servers' DRAM buses and both HCAs, so replication
//! bandwidth contends with client traffic exactly like any other transfer.
//!
//! **Promotion rules.** When a client's retrying operation observes the
//! primary's crash ([`shmcaffe_simnet::fault::FaultError::NodeCrashed`]),
//! it calls [`SmbPair::fail_over`]: the first caller *promotes* the standby
//! (waiting out any in-flight replication pass, so a pass never straddles
//! the role flip), every caller then reconnects its queue pair to the
//! standby and re-resolves access keys through the mirrored segment table —
//! segments keep their [`crate::ShmKey`]s across failover, so client
//! handles stay valid. Promotion is permanent and idempotent.
//!
//! **Happens-before.** Under `--features race-detect` the replicator's
//! writes into standby regions are plain `Write`s: they are safe only
//! because *replicate happens-before promote happens-before every client
//! access to the standby*. The replicator stamps its clock after each pass;
//! promotion joins that stamp; and every post-promotion
//! [`SmbPair::active_server`] call joins the promotion stamp (each worker
//! and update thread is its own process, so the join must happen per
//! access, not per client). Removing any of these edges is a detectable
//! race — see `crates/smb/tests/race_detect.rs`.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::{SimContext, SimDuration, SimTime};

use crate::server::{ShmKey, SmbServer, SmbServerConfig};
use crate::SmbError;

/// Which member of an [`SmbPair`] currently serves client operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerRole {
    /// The original server on the first memory endpoint.
    Primary,
    /// The mirror on the second memory endpoint (after promotion).
    Standby,
}

struct PairInner {
    primary: SmbServer,
    standby: SmbServer,
    /// Pseudo-region id for exploration footprints on the pair's fencing
    /// state (fence epoch, authority lease, promotion flags). Every read
    /// of that state is an `AtomicRead` on this region and every change an
    /// `AtomicWrite`/`AtomicRmw`, so the schedule explorer knows that
    /// admission checks do not commute with promotion or lease renewal.
    fence_region: u64,
    /// Completed replication passes (the replication epoch).
    epoch: Mutex<u64>,
    /// Standby's view of each segment's version at its last copy, for
    /// delta replication (only changed segments move bytes).
    replicated_versions: Mutex<BTreeMap<ShmKey, u64>>,
    /// A replication pass is currently in flight (the promoter waits for
    /// it to drain so no pass straddles the role flip).
    in_pass: AtomicBool,
    /// A promotion has been claimed (first fail_over caller wins).
    promote_started: AtomicBool,
    /// The promotion is complete; clients route to the standby.
    promote_done: AtomicBool,
    /// Replicator shutdown flag (set by the platform at teardown).
    stop: AtomicBool,
    /// Monotonic fencing epoch. Starts at 1 (the primary's term); the
    /// promotion winner bumps it to 2 (the standby's term). Replicated
    /// clients carry the epoch they believe active with every mutation
    /// and the pair rejects mismatches with [`SmbError::FencedEpoch`].
    fence_epoch: AtomicU64,
    /// When the primary's write authority lapses unless a successful
    /// replication pass renews it first. Once `now >= expiry` the primary
    /// self-fences (rejects its own epoch's mutations) and promotion of
    /// the standby becomes legal even though the primary never crashed —
    /// the partition-isolated-primary case.
    authority_expiry: Mutex<SimTime>,
    /// Mutations rejected with [`SmbError::FencedEpoch`] (split-brain
    /// writes that the fence stopped).
    fenced_rejections: AtomicU64,
    /// Divergent (unreplicated) segments the demoted primary discarded
    /// during partition-heal reconciliation.
    reconcile_discarded: AtomicU64,
    /// Segments the demoted primary resynced from the new primary's
    /// journal during partition-heal reconciliation.
    reconcile_resynced: AtomicU64,
    /// Poisoned pages repaired from the other member's replicated copy.
    repairs: AtomicU64,
    /// The repair fence: re-check that the target page is *still* poisoned
    /// after the repair transfer, before landing the replica's (possibly
    /// stale) bytes. On only for the schedule-checker mutation harness to
    /// turn off (`set_repair_fence`) — disabling it makes repair able to
    /// stomp a concurrent client write, which `Simulation::explore` then
    /// catches (see `tests/schedcheck.rs`).
    repair_fence: AtomicBool,
    /// Clock stamp taken by the promotion winner right after it acquired
    /// the fence (bumped the epoch): the fence-acquire→first-fenced-write
    /// happens-before edge, joined by every client epoch refresh.
    #[cfg(feature = "race-detect")]
    fence_stamp: Mutex<Option<shmcaffe_simnet::race::VectorClock>>,
    /// Clock stamp at the end of the last completed pass: the
    /// replicate→promote happens-before edge.
    #[cfg(feature = "race-detect")]
    repl_stamp: Mutex<Option<shmcaffe_simnet::race::VectorClock>>,
    /// Clock stamp at promotion: the promote→client-access edge, joined by
    /// every post-promotion [`SmbPair::active_server`] call.
    #[cfg(feature = "race-detect")]
    promote_stamp: Mutex<Option<shmcaffe_simnet::race::VectorClock>>,
}

/// A replicated SMB deployment: primary plus standby with asynchronous
/// mirror traffic and client-triggered failover. Cheap to clone (shared
/// handle).
#[derive(Clone)]
pub struct SmbPair {
    inner: Arc<PairInner>,
}

impl fmt::Debug for SmbPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SmbPair")
            .field("primary", &self.inner.primary.node())
            .field("standby", &self.inner.standby.node())
            .field("role", &self.role())
            .field("epoch", &self.epoch())
            .finish()
    }
}

impl SmbPair {
    /// Builds a pair over the fabric's first two memory-server endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::NoMemoryServer`] unless the fabric has at least
    /// two memory servers (`ClusterSpec::memory_servers >= 2`).
    pub fn new(rdma: RdmaFabric, config: SmbServerConfig) -> Result<Self, SmbError> {
        let primary = SmbServer::with_config_at(rdma.clone(), config, 0)?;
        let standby = SmbServer::with_config_at(rdma, config, 1)?;
        let fence_region = crate::server::pseudo_region(
            "smb.fence",
            ((primary.node().0 as u64) << 32) | standby.node().0 as u64,
        );
        Ok(SmbPair {
            inner: Arc::new(PairInner {
                primary,
                standby,
                fence_region,
                epoch: Mutex::new(0),
                replicated_versions: Mutex::new(BTreeMap::new()),
                in_pass: AtomicBool::new(false),
                promote_started: AtomicBool::new(false),
                promote_done: AtomicBool::new(false),
                stop: AtomicBool::new(false),
                fence_epoch: AtomicU64::new(1),
                authority_expiry: Mutex::new(SimTime::ZERO + config.authority_timeout),
                fenced_rejections: AtomicU64::new(0),
                reconcile_discarded: AtomicU64::new(0),
                reconcile_resynced: AtomicU64::new(0),
                repairs: AtomicU64::new(0),
                repair_fence: AtomicBool::new(true),
                #[cfg(feature = "race-detect")]
                fence_stamp: Mutex::new(None),
                #[cfg(feature = "race-detect")]
                repl_stamp: Mutex::new(None),
                #[cfg(feature = "race-detect")]
                promote_stamp: Mutex::new(None),
            }),
        })
    }

    /// The primary server (serving until promotion).
    pub fn primary(&self) -> &SmbServer {
        &self.inner.primary
    }

    /// The standby server (serving after promotion).
    pub fn standby(&self) -> &SmbServer {
        &self.inner.standby
    }

    /// Which member currently serves clients.
    pub fn role(&self) -> ServerRole {
        if self.inner.promote_done.load(Ordering::Acquire) {
            ServerRole::Standby
        } else {
            ServerRole::Primary
        }
    }

    /// Completed replication passes.
    pub fn epoch(&self) -> u64 {
        *self.inner.epoch.lock()
    }

    /// Whether the standby has been promoted.
    pub fn promoted(&self) -> bool {
        self.inner.promote_done.load(Ordering::Acquire)
    }

    /// The active fencing epoch: 1 while the primary holds authority, 2
    /// once the standby has been promoted.
    pub fn fence_epoch(&self) -> u64 {
        self.inner.fence_epoch.load(Ordering::Acquire)
    }

    /// Mutations rejected with [`SmbError::FencedEpoch`] so far — every
    /// split-brain write the fence stopped.
    pub fn fenced_rejections(&self) -> u64 {
        self.inner.fenced_rejections.load(Ordering::Relaxed)
    }

    /// Segments the demoted primary (discarded, resynced) during
    /// partition-heal reconciliation (see [`SmbPair::reconcile_demoted`]).
    pub fn reconcile_counts(&self) -> (u64, u64) {
        (
            self.inner.reconcile_discarded.load(Ordering::Relaxed),
            self.inner.reconcile_resynced.load(Ordering::Relaxed),
        )
    }

    /// Whether the primary's write-authority lease has lapsed: no
    /// replication pass renewed it within
    /// [`SmbServerConfig::authority_timeout`]. An expired lease both
    /// self-fences the primary and makes standby promotion legal.
    pub fn authority_expired(&self, ctx: &SimContext) -> bool {
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicRead);
        ctx.now() >= *self.inner.authority_expiry.lock()
    }

    /// Records an exploration footprint on the pair's fencing pseudo-region
    /// (no-op outside [`shmcaffe_simnet::Simulation::explore`]).
    fn fence_footprint(&self, ctx: &SimContext, kind: shmcaffe_simnet::FootprintKind) {
        ctx.footprint(self.inner.fence_region, 0, 1, kind);
    }

    /// The current fencing epoch, with the promotion winner's fence stamp
    /// joined into the calling process's clock — the
    /// fence-acquire→first-fenced-write happens-before edge. Clients call
    /// this whenever they refresh their carried epoch.
    pub fn observe_fence(&self, ctx: &SimContext) -> u64 {
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicRead);
        #[cfg(feature = "race-detect")]
        if let Some(stamp) = self.inner.fence_stamp.lock().as_ref() {
            ctx.vc_join(stamp);
        }
        #[cfg(not(feature = "race-detect"))]
        let _ = ctx;
        self.inner.fence_epoch.load(Ordering::Acquire)
    }

    /// Epoch admission for a client mutation carrying `carried` as the
    /// epoch it believes active. Admitted only when the carried epoch
    /// matches the active one *and* the serving member actually holds
    /// authority: a primary whose lease has expired rejects even
    /// current-epoch writes (self-fencing — it may already be partitioned
    /// away from a standby that is about to take over, and accepting the
    /// write would fork the center variable).
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::FencedEpoch`] on any mismatch; the retry layer
    /// treats it as transient, fails over and refreshes the epoch.
    pub fn admit_mutation(
        &self,
        ctx: &SimContext,
        key: ShmKey,
        carried: u64,
    ) -> Result<(), SmbError> {
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicRead);
        let active = self.inner.fence_epoch.load(Ordering::Acquire);
        let (stale, node) = if self.promoted() {
            (carried != active, self.inner.standby.node())
        } else {
            (carried != active || self.authority_expired(ctx), self.inner.primary.node())
        };
        if stale {
            self.inner.fenced_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SmbError::FencedEpoch { key, node, carried, active });
        }
        Ok(())
    }

    /// Renews the primary's authority lease — called after each
    /// successful replication pass (proof the primary can still reach the
    /// standby, so no promotion can be in progress on the other side).
    fn renew_authority(&self, ctx: &SimContext) {
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicWrite);
        *self.inner.authority_expiry.lock() =
            ctx.now() + self.inner.primary.config().authority_timeout;
    }

    /// Whether the still-serving primary's node has crashed according to
    /// the fabric's fault plan. Clients consult this to route plain
    /// (non-retrying) operations away from a dead primary proactively —
    /// those paths transfer infallibly and must never target a crashed
    /// endpoint. Always `false` once promoted (the primary no longer
    /// serves) or when the fabric has no fault plan.
    pub fn primary_crashed(&self, ctx: &SimContext) -> bool {
        !self.promoted() && self.primary_crashed_raw(ctx)
    }

    /// Whether the still-serving primary cannot serve `local`'s plain
    /// (infallible) operations at all: it crashed, **or** it is cut off
    /// from `local` by a network partition *and* its authority lease has
    /// already expired. The second arm is what lets infallible ops on the
    /// minority side fail over instead of riding out the partition against
    /// a primary that has lost authority anyway; while the lease is live
    /// the primary may still legitimately be renewed, so plain ops keep
    /// waiting. Always `false` once promoted.
    pub fn primary_unserviceable(&self, ctx: &SimContext, local: NodeId) -> bool {
        if self.promoted() {
            return false;
        }
        if self.primary_crashed_raw(ctx) {
            return true;
        }
        if !self.authority_expired(ctx) {
            return false;
        }
        let node = self.inner.primary.node();
        self.inner.primary.rdma().fabric().fault_injector().is_some_and(|inj| {
            inj.partitioned(local, node, ctx.now()) || inj.partitioned(node, local, ctx.now())
        })
    }

    /// The currently serving server. After promotion this also joins the
    /// promotion stamp into the calling process's clock, establishing the
    /// replicate→promote→access happens-before chain for *every* process
    /// that touches the standby (workers and their update threads each
    /// have their own clock, so the join happens per call).
    pub fn active_server(&self, ctx: &SimContext) -> SmbServer {
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicRead);
        if self.inner.promote_done.load(Ordering::Acquire) {
            #[cfg(feature = "race-detect")]
            if let Some(stamp) = self.inner.promote_stamp.lock().as_ref() {
                ctx.vc_join(stamp);
            }
            #[cfg(not(feature = "race-detect"))]
            let _ = ctx;
            self.inner.standby.clone()
        } else {
            self.inner.primary.clone()
        }
    }

    /// One asynchronous replication pass: ships the segment journal
    /// (metadata + changed contents), the lease table and the eviction
    /// tombstones to the standby, charging wire time over the path
    /// primary DRAM bus → primary HCA → standby HCA → standby DRAM bus.
    /// Bumps and returns the replication epoch on success.
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::Unavailable`] when the primary↔standby path is
    /// faulted (in particular once the primary has crashed) — the pass
    /// aborts and whatever the standby already holds is what failover gets.
    pub fn replicate(&self, ctx: &SimContext) -> Result<u64, SmbError> {
        self.inner.in_pass.store(true, Ordering::Release);
        let result = self.replicate_pass(ctx);
        // Stamp the pass end even when it aborted part-way: promotion joins
        // this stamp, so every standby write the pass did manage to apply
        // happens-before the promotion.
        #[cfg(feature = "race-detect")]
        {
            *self.inner.repl_stamp.lock() = Some(ctx.vc_stamp());
        }
        self.inner.in_pass.store(false, Ordering::Release);
        if result.is_ok() {
            // The pass reached the standby and came back: the primary
            // demonstrably still owns the pair, so its lease renews.
            self.renew_authority(ctx);
        }
        result
    }

    fn replicate_pass(&self, ctx: &SimContext) -> Result<u64, SmbError> {
        let primary = &self.inner.primary;
        let standby = &self.inner.standby;
        let rdma = primary.rdma();
        let fabric = rdma.fabric();
        let cfg = primary.config();

        let catalog = primary.segment_catalog();
        // Mirror deletions first: segments evicted on the primary since the
        // last pass must not survive on the standby.
        let live: BTreeMap<ShmKey, ()> = catalog.iter().map(|m| (m.key, ())).collect();
        for meta in standby.segment_catalog() {
            if !live.contains_key(&meta.key) {
                standby.drop_replica_segment(meta.key);
                self.inner.replicated_versions.lock().remove(&meta.key);
            }
        }
        for meta in catalog {
            // The crash cuts the replication stream mid-pass: segments
            // copied before the cut stay; the rest keep their old contents.
            self.gate(ctx, fabric)?;
            // A segment with an open chunked accumulate stream is skipped
            // *entirely* (not even installed): shipping it mid-stream would
            // hand the standby a torn, half-folded W_g that no worker ever
            // produced. The standby keeps its previous consistent copy, and
            // because `replicated_versions` is left stale, the next pass
            // after the stream closes re-ships the whole segment. A stream
            // that never closes starves that segment's replication — the
            // client side bounds streams to one exchange, so the window is
            // a few chunk round trips.
            if primary.stream_open(ctx, meta.key) {
                continue;
            }
            // Never launder corruption onto the standby: the pass verifies
            // each segment before shipping it (the replicator doubles as a
            // scrubber — failing pages get poisoned here). A dirty segment
            // is skipped entirely; `replicated_versions` stays stale, so
            // the pass after its repair re-ships the clean contents.
            if !primary.segment_clean(ctx, meta.key) {
                continue;
            }
            let behind =
                self.inner.replicated_versions.lock().get(&meta.key) != Some(&meta.version);
            let is_new = standby.segment(meta.key).is_err();
            let standby_mr = standby.install_replica_segment(&meta)?;
            if !behind && !is_new {
                continue;
            }
            let Ok((primary_mr, _)) = primary.segment(meta.key) else {
                // Evicted while this pass slept on the wire; the next pass
                // mirrors the deletion.
                continue;
            };
            let data = rdma.with_region(&primary_mr, |buf| buf.to_vec())?;
            rdma.with_region(&standby_mr, |buf| buf.copy_from_slice(&data))?;
            // The copy is verified-clean, so it also heals whatever the
            // standby's own grid held before (a fresh full-segment repair).
            standby.refresh_segment_crcs(meta.key);
            ctx.footprint(
                standby_mr.rkey.0,
                0,
                standby_mr.len,
                shmcaffe_simnet::FootprintKind::Write,
            );
            #[cfg(feature = "race-detect")]
            {
                use shmcaffe_simnet::race::AccessKind;
                // The source side is deliberately *not* recorded: async
                // replication snapshots segments that clients keep
                // mutating — that concurrency is the design, not a bug
                // (a torn snapshot is healed by the next pass, and
                // checkpoint segments use the versioned protocol for
                // state whose integrity rejoin depends on). The standby
                // side *is* recorded, as a plain write: only the
                // replicate→promote→access edges make it safe, and any
                // client that reaches the standby without them races here.
                rdma.race_detector().record(
                    ctx,
                    standby_mr.rkey.0,
                    0,
                    standby_mr.len,
                    AccessKind::Write,
                    "smb::replica::apply",
                );
            }
            let wire = (meta.wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
            shmcaffe_simnet::resource::transfer_path_stream(
                ctx,
                &[
                    primary.memory_resource(),
                    fabric.hca_tx(primary.node()),
                    fabric.hca_rx(standby.node()),
                    standby.memory_resource(),
                ],
                wire,
                Some(cfg.stream_bps),
            );
            self.inner.replicated_versions.lock().insert(meta.key, meta.version);
        }
        // Control-plane mirror: lease table and tombstones ride one control
        // message once the data plane is consistent.
        self.gate(ctx, fabric)?;
        ctx.sleep(cfg.control_latency);
        standby.set_leases(primary.lease_catalog());
        standby.set_tombstones(primary.tombstone_catalog());
        let mut epoch = self.inner.epoch.lock();
        *epoch += 1;
        Ok(*epoch)
    }

    /// Fault gate on an explicit `from`→`to` direction (reconciliation
    /// flows standby→primary, the reverse of replication).
    fn gate_from(
        &self,
        ctx: &SimContext,
        fabric: &shmcaffe_simnet::topology::Fabric,
        from: NodeId,
        to: NodeId,
    ) -> Result<(), SmbError> {
        fabric.fault_check(ctx, from, to).map_err(|fault| SmbError::Unavailable {
            key: ShmKey(0),
            node: from,
            cause: shmcaffe_rdma::RdmaError::QpFault { local: to, remote: from, fault },
        })?;
        Ok(())
    }

    /// Fault gate on the primary→standby path.
    fn gate(
        &self,
        ctx: &SimContext,
        fabric: &shmcaffe_simnet::topology::Fabric,
    ) -> Result<(), SmbError> {
        let primary = &self.inner.primary;
        let standby = &self.inner.standby;
        fabric.fault_check(ctx, primary.node(), standby.node()).map_err(|fault| {
            SmbError::Unavailable {
                key: ShmKey(0),
                node: primary.node(),
                cause: shmcaffe_rdma::RdmaError::QpFault {
                    local: standby.node(),
                    remote: primary.node(),
                    fault,
                },
            }
        })?;
        Ok(())
    }

    /// Runs the replication loop: one pass every `interval` of virtual
    /// time, until [`SmbPair::stop_replicator`] is called or the primary
    /// crashes. Transient pass failures (a partitioned or faulted
    /// primary↔standby path) do *not* stop the loop — passes keep being
    /// attempted, but the authority lease stops renewing, so the standby
    /// becomes legally promotable while the primary is still alive. If the
    /// standby is promoted out from under a live primary, the loop turns
    /// into the demoted primary's reconciliation watch: it waits for the
    /// partition to heal and then runs one [`SmbPair::reconcile_demoted`]
    /// pass. Spawn this as its own simulation process.
    pub fn run_replicator(&self, ctx: &SimContext, interval: SimDuration) {
        loop {
            ctx.sleep(interval);
            if self.inner.stop.load(Ordering::Acquire) {
                return;
            }
            if self.inner.promote_started.load(Ordering::Acquire) {
                break;
            }
            if let Err(e) = self.replicate(ctx) {
                if e.is_server_crash() {
                    // The primary is gone; the standby serves whatever the
                    // completed passes mirrored.
                    return;
                }
                // Partition or link fault on the mirror path: keep trying.
                // Each failed pass leaves the lease un-renewed, counting
                // down to the primary's self-fence.
            }
        }
        // The standby was promoted while this primary stayed alive: this
        // process becomes the demoted primary's reconciliation watch.
        self.reconcile_when_healed(ctx, interval);
    }

    /// Demoted-primary side of partition heal: waits until the
    /// primary↔standby path is partition-free (in both directions), then
    /// runs one reconciliation pass. Gives up without reconciling when the
    /// primary crashes, the pair is stopped, or the partition never heals.
    fn reconcile_when_healed(&self, ctx: &SimContext, interval: SimDuration) {
        let primary = self.inner.primary.node();
        let standby = self.inner.standby.node();
        loop {
            if self.inner.stop.load(Ordering::Acquire) || self.primary_crashed_raw(ctx) {
                return;
            }
            let rdma = self.inner.primary.rdma();
            let Some(inj) = rdma.fabric().fault_injector() else { break };
            let now = ctx.now();
            let a = inj.partitioned_until(primary, standby, now);
            let b = inj.partitioned_until(standby, primary, now);
            if a.is_none() && b.is_none() {
                break;
            }
            // Severed in at least one direction: wait for the last heal;
            // a partition that never heals leaves nothing to reconcile.
            let mut heal: Option<SimTime> = None;
            for dir in [a, b].into_iter().flatten() {
                match dir {
                    Some(t) => heal = Some(heal.map_or(t, |h| h.max(t))),
                    None => return,
                }
            }
            match heal {
                Some(at) if at > now => ctx.sleep_until(at),
                _ => ctx.sleep(interval),
            }
        }
        let _ = self.reconcile_demoted(ctx);
    }

    /// [`SmbPair::primary_crashed`] without the promotion short-circuit —
    /// the demoted primary needs its own crash status after promotion.
    fn primary_crashed_raw(&self, ctx: &SimContext) -> bool {
        self.inner
            .primary
            .rdma()
            .fabric()
            .fault_injector()
            .is_some_and(|inj| inj.memory_server_crashed(self.inner.primary.node(), ctx.now()))
    }

    /// One partition-heal reconciliation pass on the demoted primary:
    /// discards every divergent segment (version moved past what the last
    /// completed replication pass shipped — those writes were never
    /// mirrored and lost the fencing race) and every segment the new
    /// primary no longer has, then resyncs missing segments from the new
    /// primary's journal over the reverse wire path. Returns
    /// `(discarded, resynced)`; totals accumulate in
    /// [`SmbPair::reconcile_counts`].
    ///
    /// # Errors
    ///
    /// Returns [`SmbError::Unavailable`] when the standby→primary path
    /// faults mid-pass; the counts recorded so far stand.
    pub fn reconcile_demoted(&self, ctx: &SimContext) -> Result<(u64, u64), SmbError> {
        let demoted = &self.inner.primary;
        let source = &self.inner.standby;
        let rdma = demoted.rdma();
        let fabric = rdma.fabric();
        let cfg = demoted.config();
        let shipped = self.inner.replicated_versions.lock().clone();
        let live: BTreeMap<ShmKey, ()> =
            source.segment_catalog().iter().map(|m| (m.key, ())).collect();
        let mut discarded = 0u64;
        for meta in demoted.segment_catalog() {
            let diverged = shipped.get(&meta.key) != Some(&meta.version);
            if diverged || !live.contains_key(&meta.key) {
                demoted.drop_replica_segment(meta.key);
                self.inner.replicated_versions.lock().remove(&meta.key);
                discarded += 1;
                self.inner.reconcile_discarded.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut resynced = 0u64;
        for meta in source.segment_catalog() {
            if demoted.segment(meta.key).is_ok() {
                continue;
            }
            self.gate_from(ctx, fabric, source.node(), demoted.node())?;
            let dst_mr = demoted.install_replica_segment(&meta)?;
            let Ok((src_mr, _)) = source.segment(meta.key) else {
                continue;
            };
            let data = rdma.with_region(&src_mr, |buf| buf.to_vec())?;
            rdma.with_region(&dst_mr, |buf| buf.copy_from_slice(&data))?;
            demoted.refresh_segment_crcs(meta.key);
            // Deliberately not race-recorded: the demoted primary is fenced
            // out of client service, so by construction nothing races with
            // the resync write (clients route to the promoted standby, and
            // any straggler mutation was already rejected FencedEpoch).
            let wire = (meta.wire_bytes as f64 * (1.0 + cfg.protocol_overhead)) as u64;
            shmcaffe_simnet::resource::transfer_path_stream(
                ctx,
                &[
                    source.memory_resource(),
                    fabric.hca_tx(source.node()),
                    fabric.hca_rx(demoted.node()),
                    demoted.memory_resource(),
                ],
                wire,
                Some(cfg.stream_bps),
            );
            self.inner.replicated_versions.lock().insert(meta.key, meta.version);
            resynced += 1;
            self.inner.reconcile_resynced.fetch_add(1, Ordering::Relaxed);
        }
        // Control-plane resync: lease table and tombstones follow the data.
        self.gate_from(ctx, fabric, source.node(), demoted.node())?;
        ctx.sleep(cfg.control_latency);
        demoted.set_leases(source.lease_catalog());
        demoted.set_tombstones(source.tombstone_catalog());
        Ok((discarded, resynced))
    }

    /// FNV fingerprint of the pair's control-plane state plus both members'
    /// [`SmbServer::state_hash`]. Fed to
    /// [`shmcaffe_simnet::Simulation::set_state_probe`] so the schedule
    /// explorer can collapse interleavings that converge on the same
    /// replicated state (same fence epoch, same promotion status, same
    /// segment contents on both sides).
    pub fn state_hash(&self) -> u64 {
        let mut h = shmcaffe_simnet::explore::Fnv::new();
        h.write_u64(self.inner.fence_epoch.load(Ordering::Acquire));
        h.write_u8(u8::from(self.inner.promote_started.load(Ordering::Acquire)));
        h.write_u8(u8::from(self.inner.promote_done.load(Ordering::Acquire)));
        h.write_u64(*self.inner.epoch.lock());
        h.write_u64(self.inner.fenced_rejections.load(Ordering::Relaxed));
        h.write_u64(self.inner.reconcile_discarded.load(Ordering::Relaxed));
        h.write_u64(self.inner.reconcile_resynced.load(Ordering::Relaxed));
        for (key, version) in self.inner.replicated_versions.lock().iter() {
            h.write_u64(key.0);
            h.write_u64(*version);
        }
        h.write_u64(self.inner.primary.state_hash());
        h.write_u64(self.inner.standby.state_hash());
        h.finish()
    }

    /// Asks the replicator loop to exit at its next wakeup.
    pub fn stop_replicator(&self) {
        self.inner.stop.store(true, Ordering::Release);
    }

    /// Promotes the standby. Promotion is only *legal* once the primary
    /// has demonstrably lost authority: either its node crashed, or its
    /// authority lease expired without a replication pass renewing it (the
    /// partitioned-but-alive case) — callers block until one of the two
    /// holds, so a healthy primary can never be usurped. The first caller
    /// then wins: it waits out any in-flight replication pass (so the
    /// pass's standby writes are ordered before the role flip), joins the
    /// replicator's last stamp, bumps the fencing epoch (acquiring the
    /// fence and stamping the fence-acquire edge), and opens the standby
    /// for routing. Later callers (and the winner) all leave with the
    /// promotion stamp joined into their clock. Returns whether this call
    /// performed the promotion.
    pub fn promote(&self, ctx: &SimContext) -> bool {
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicRead);
        // Legality gate first: wait out the primary's authority. Renewals
        // can push the expiry while we sleep, so re-check on every wake —
        // the loop only exits once the lease is *currently* lapsed (or the
        // primary is dead, which is instant legality).
        while !self.inner.promote_done.load(Ordering::Acquire) && !self.primary_crashed(ctx) {
            let expiry = *self.inner.authority_expiry.lock();
            if ctx.now() >= expiry {
                break;
            }
            ctx.sleep_until(expiry);
        }
        if self.inner.promote_started.swap(true, Ordering::AcqRel) {
            // Someone else is promoting (or already has): wait until the
            // flip is visible, then pick up the stamp.
            while !self.inner.promote_done.load(Ordering::Acquire) {
                ctx.sleep(SimDuration::from_micros(50));
            }
            #[cfg(feature = "race-detect")]
            if let Some(stamp) = self.inner.promote_stamp.lock().as_ref() {
                ctx.vc_join(stamp);
            }
            return false;
        }
        while self.inner.in_pass.load(Ordering::Acquire) {
            ctx.sleep(SimDuration::from_micros(50));
        }
        #[cfg(feature = "race-detect")]
        {
            if let Some(stamp) = self.inner.repl_stamp.lock().as_ref() {
                ctx.vc_join(stamp);
            }
        }
        // Acquire the fence: bump the epoch *before* opening the standby
        // for routing, so no client can reach the standby while the old
        // epoch still admits. The fence stamp taken here is joined by every
        // epoch refresh — the fence-acquire→first-fenced-write edge.
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicWrite);
        self.inner.fence_epoch.fetch_add(1, Ordering::AcqRel);
        #[cfg(feature = "race-detect")]
        {
            *self.inner.fence_stamp.lock() = Some(ctx.vc_stamp());
            *self.inner.promote_stamp.lock() = Some(ctx.vc_stamp());
        }
        self.inner.promote_done.store(true, Ordering::Release);
        true
    }

    /// Range accumulate on the pair's currently active member: server-side
    /// `dst[offset..offset+len] += src[offset..offset+len]` with engine
    /// time charged proportionally (see `SmbServer`'s range accumulate).
    /// Joins the promotion stamp when routed at the standby, like every
    /// other post-promotion access.
    ///
    /// # Errors
    ///
    /// Returns key/length/bounds errors from the active server.
    pub fn accumulate_range(
        &self,
        ctx: &SimContext,
        src: ShmKey,
        dst: ShmKey,
        offset: usize,
        len: usize,
    ) -> Result<u64, SmbError> {
        self.active_server(ctx).accumulate_range(ctx, src, dst, offset, len)
    }

    /// Repairs one poisoned page of the currently active member by
    /// re-fetching the other member's replicated copy of it.
    ///
    /// The protocol, in order:
    ///
    /// 1. wait out any in-flight replication pass, then join the
    ///    replicator's last stamp — every standby byte the passes wrote
    ///    happens-before the source read below;
    /// 2. skip out if the page is no longer poisoned (another client
    ///    already repaired it — repair must only ever touch poisoned
    ///    pages);
    /// 3. read and *verify* the source copy: a page that is bad on both
    ///    members, or a key the other member never mirrored, is
    ///    [`SmbError::Unrepairable`];
    /// 4. charge the reverse wire path (source DRAM bus → source HCA →
    ///    destination HCA → destination DRAM bus) proportionally to the
    ///    page's share of the segment, gated on the fabric's fault plan;
    /// 5. **repair fence**: the transfer yielded, so re-check that the
    ///    page is *still* poisoned — a concurrent repair may have already
    ///    landed and a client write may have overwritten the page since;
    ///    landing the stale replica bytes over that write would be a
    ///    silent lost update (the mutation harness in
    ///    `tests/schedcheck.rs` proves the explorer catches exactly this
    ///    when the fence is disabled);
    /// 6. land the page as an `AtomicRmw` and clear its poison. No
    ///    version bump: repair restores bytes the standby already holds,
    ///    it does not create new data to re-replicate.
    ///
    /// # Errors
    ///
    /// [`SmbError::Unrepairable`] when no clean source copy exists
    /// (permanent); transient transport errors when the reverse path is
    /// faulted mid-repair — the caller's retry loop re-detects the
    /// poison and re-attempts.
    pub fn repair_page(&self, ctx: &SimContext, key: ShmKey, page: usize) -> Result<(), SmbError> {
        let (dst, src) = if self.promoted() {
            (&self.inner.standby, &self.inner.primary)
        } else {
            (&self.inner.primary, &self.inner.standby)
        };
        self.fence_footprint(ctx, shmcaffe_simnet::FootprintKind::AtomicRead);
        while self.inner.in_pass.load(Ordering::Acquire) {
            ctx.sleep(SimDuration::from_micros(50));
        }
        #[cfg(feature = "race-detect")]
        if let Some(stamp) = self.inner.repl_stamp.lock().as_ref() {
            ctx.vc_join(stamp);
        }
        if !dst.page_poisoned(ctx, key, page) {
            return Ok(());
        }
        let data = match src.read_page_checked(ctx, key, page) {
            Ok(data) => data,
            Err(_) => return Err(SmbError::Unrepairable { key, node: dst.node(), page }),
        };
        let fabric = dst.rdma().fabric();
        self.gate_from(ctx, fabric, src.node(), dst.node())?;
        let (dst_mr, wire_bytes) = dst.segment(key)?;
        let cfg = dst.config();
        let share = data.len() as f64 / dst_mr.len.max(1) as f64;
        let wire = (wire_bytes as f64 * (1.0 + cfg.protocol_overhead) * share).ceil() as u64;
        shmcaffe_simnet::resource::transfer_path_stream(
            ctx,
            &[
                src.memory_resource(),
                fabric.hca_tx(src.node()),
                fabric.hca_rx(dst.node()),
                dst.memory_resource(),
            ],
            wire,
            Some(cfg.stream_bps),
        );
        if self.inner.repair_fence.load(Ordering::Acquire) && !dst.page_poisoned(ctx, key, page) {
            return Ok(());
        }
        dst.install_page(ctx, key, page, &data)?;
        self.inner.repairs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Poisoned pages repaired from the other member's copy so far.
    pub fn repairs_completed(&self) -> u64 {
        self.inner.repairs.load(Ordering::Relaxed)
    }

    /// Mutation-harness knob (see `tests/schedcheck.rs`): disables the
    /// still-poisoned re-check after the repair transfer, re-introducing
    /// the lost-update window the fence exists to close. Never call this
    /// outside a model-checker run.
    pub fn set_repair_fence(&self, enabled: bool) {
        self.inner.repair_fence.store(enabled, Ordering::Release);
    }

    /// Client-side failover: promotes the standby (first caller) and moves
    /// this client's queue pair from the dead primary to the standby. The
    /// segment table was mirrored under the same keys, so rkey
    /// re-resolution happens implicitly on the caller's next operation.
    pub fn fail_over(&self, ctx: &SimContext, local: NodeId) {
        self.promote(ctx);
        self.inner.primary.rdma().reconnect_qp(
            ctx,
            local,
            self.inner.primary.node(),
            self.inner.standby.node(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;

    fn replicated_fabric(gpu_nodes: usize) -> RdmaFabric {
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(gpu_nodes) };
        RdmaFabric::new(Fabric::new(spec))
    }

    #[test]
    fn pair_requires_two_memory_servers() {
        let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
        assert!(matches!(
            SmbPair::new(rdma, SmbServerConfig::default()),
            Err(SmbError::NoMemoryServer)
        ));
    }

    #[test]
    fn replication_mirrors_segments_under_the_same_keys() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let key = client.create(&ctx, "wg", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
            assert_eq!(p.replicate(&ctx).unwrap(), 1);
            // Same ShmKey resolves on the standby, contents mirrored.
            let (mr, _) = p.standby().segment(key).unwrap();
            let copy = p.standby().rdma().with_region(&mr, |b| b.to_vec()).unwrap();
            assert_eq!(copy, vec![1.0, 2.0, 3.0, 4.0]);
            // Unchanged segments are skipped on the next pass (epoch still
            // bumps — the journal round trip happened).
            assert_eq!(p.replicate(&ctx).unwrap(), 2);
        });
        sim.run();
    }

    #[test]
    fn replication_charges_both_dram_buses() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let key = client.create(&ctx, "wg", 4, Some(100_000_000)).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &[1.0; 4]).unwrap();
            let before = p.standby().memory_bytes();
            p.replicate(&ctx).unwrap();
            assert!(
                p.standby().memory_bytes() > before + 100_000_000,
                "standby DRAM bus must carry the mirrored contents"
            );
        });
        sim.run();
    }

    #[test]
    fn replication_mirrors_deletions_leases_and_tombstones() {
        use shmcaffe_simnet::SimDuration;
        let rdma = replicated_fabric(1);
        let cfg =
            SmbServerConfig { lease_timeout: SimDuration::from_millis(50), ..Default::default() };
        let pair = SmbPair::new(rdma, cfg).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let key = client.create_owned(&ctx, "dw1", 4, None, 1).unwrap();
            p.replicate(&ctx).unwrap();
            assert!(p.standby().segment(key).is_ok());
            assert_eq!(p.standby().lease_owner(key), Some(1));
            // Owner 1 stops heartbeating; the primary evicts, and the next
            // pass mirrors both the deletion and the tombstone.
            ctx.sleep(SimDuration::from_millis(100));
            assert_eq!(p.primary().evict_stale(&ctx), vec![key]);
            p.replicate(&ctx).unwrap();
            assert!(matches!(
                p.standby().segment(key),
                Err(SmbError::LeaseExpired { owner: 1, .. })
            ));
            assert_eq!(p.standby().tombstone_count(), 1);
        });
        sim.run();
    }

    #[test]
    fn open_accumulate_stream_defers_replication_until_closed() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("repl", move |ctx| {
            let client = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            let policy = crate::RetryPolicy::with_seed(4);
            let wg = client.alloc(&ctx, client.create(&ctx, "wg", 4, None).unwrap()).unwrap();
            let dw = client.alloc(&ctx, client.create(&ctx, "dw", 4, None).unwrap()).unwrap();
            client.write(&ctx, &wg, &[1.0; 4]).unwrap();
            p.replicate(&ctx).unwrap();
            // Open a chunk stream and fold only the first half: W_g on the
            // primary is now torn (half old, half new).
            p.primary().begin_accumulate_stream(&ctx, wg.key);
            client.write_range_retrying(&ctx, &dw, 0, &[10.0, 10.0], &policy).unwrap();
            client.accumulate_range_retrying(&ctx, &dw, &wg, 0, 2, &policy).unwrap();
            // A pass during the stream must NOT ship the torn state.
            p.replicate(&ctx).unwrap();
            let (mr, _) = p.standby().segment(wg.key).unwrap();
            let copy = p.standby().rdma().with_region(&mr, |b| b.to_vec()).unwrap();
            assert_eq!(copy, vec![1.0; 4], "standby must keep the pre-stream W_g");
            // Close the stream after the second half lands; the next pass
            // ships the now-consistent contents.
            client.write_range_retrying(&ctx, &dw, 2, &[10.0, 10.0], &policy).unwrap();
            client.accumulate_range_retrying(&ctx, &dw, &wg, 2, 2, &policy).unwrap();
            p.primary().end_accumulate_stream(&ctx, wg.key);
            p.replicate(&ctx).unwrap();
            let copy = p.standby().rdma().with_region(&mr, |b| b.to_vec()).unwrap();
            assert_eq!(copy, vec![11.0; 4], "post-stream pass ships the folded W_g");
        });
        sim.run();
    }

    #[test]
    fn promotion_is_idempotent_and_flips_routing() {
        let rdma = replicated_fabric(1);
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            assert_eq!(p.role(), ServerRole::Primary);
            assert_eq!(p.active_server(&ctx).node(), p.primary().node());
            assert!(p.promote(&ctx));
            assert!(!p.promote(&ctx), "second promote is a no-op");
            assert_eq!(p.role(), ServerRole::Standby);
            assert_eq!(p.active_server(&ctx).node(), p.standby().node());
        });
        sim.run();
    }

    #[test]
    fn promotion_blocks_until_lease_expiry_without_crash() {
        use shmcaffe_simnet::SimTime;
        let rdma = replicated_fabric(1);
        let cfg = SmbServerConfig {
            authority_timeout: SimDuration::from_millis(80),
            ..Default::default()
        };
        let pair = SmbPair::new(rdma, cfg).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("usurper", move |ctx| {
            assert_eq!(p.fence_epoch(), 1);
            assert!(!p.authority_expired(&ctx));
            // No crash and a live lease: promote must wait the lease out.
            assert!(p.promote(&ctx));
            assert!(ctx.now() >= SimTime::from_millis(80), "{:?}", ctx.now());
            assert_eq!(p.fence_epoch(), 2);
        });
        sim.run();
    }

    #[test]
    fn expired_lease_self_fences_and_fenced_retry_fails_over() {
        use shmcaffe_simnet::SimDuration;
        let rdma = replicated_fabric(1);
        let cfg = SmbServerConfig {
            authority_timeout: SimDuration::from_millis(50),
            ..Default::default()
        };
        let pair = SmbPair::new(rdma, cfg).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = crate::SmbClient::with_failover(p.clone(), NodeId(0));
            let policy = crate::RetryPolicy::with_seed(7);
            let key = client.create(&ctx, "wg", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write_retrying(&ctx, &buf, &[1.0; 4], &policy).unwrap();
            p.replicate(&ctx).unwrap();
            // Nothing renews the lease past here; let it lapse.
            ctx.sleep(SimDuration::from_millis(100));
            assert!(p.authority_expired(&ctx));
            let v_before = p.primary().version(key).unwrap();
            // Plain mutations are rejected outright: the primary has lost
            // authority even though its epoch is still nominally active.
            assert!(matches!(
                client.write(&ctx, &buf, &[6.0; 4]),
                Err(SmbError::FencedEpoch { carried: 1, active: 1, .. })
            ));
            assert_eq!(p.primary().version(key).unwrap(), v_before, "fenced write landed");
            assert!(p.fenced_rejections() >= 1);
            // The retrying path recovers: the rejection triggers failover
            // (legal — the lease is expired), an epoch refresh, and the
            // next attempt lands on the promoted standby.
            client.write_retrying(&ctx, &buf, &[2.0; 4], &policy).unwrap();
            assert!(p.promoted());
            assert_eq!(p.fence_epoch(), 2);
            assert_eq!(client.carried_epoch(), 2);
            let (mr, _) = p.standby().segment(key).unwrap();
            let copy = p.standby().rdma().with_region(&mr, |b| b.to_vec()).unwrap();
            assert_eq!(copy, vec![2.0; 4]);
            assert!(client.fault_stats().fenced >= 2);
        });
        sim.run();
    }

    #[test]
    fn transient_partition_does_not_promote_or_stop_replication() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) };
        let primary = NodeId(spec.gpu_nodes);
        let standby = NodeId(spec.gpu_nodes + 1);
        // Mirror path severed 30–60 ms; authority outlives the partition.
        let plan = FaultPlan::new(13).partition(
            vec![vec![primary], vec![NodeId(0), standby]],
            SimTime::from_millis(30),
            Some(SimTime::from_millis(60)),
        );
        let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
        let cfg = SmbServerConfig {
            authority_timeout: SimDuration::from_millis(100),
            ..Default::default()
        };
        let pair = SmbPair::new(rdma, cfg).unwrap();
        {
            let p = pair.clone();
            let mut sim = Simulation::new();
            sim.spawn("replicator", move |ctx| {
                p.run_replicator(&ctx, SimDuration::from_millis(10));
            });
            let p = pair.clone();
            sim.spawn("observer", move |ctx| {
                ctx.sleep_until(SimTime::from_millis(105));
                assert!(!p.promoted(), "a transient partition must not promote");
                assert!(!p.authority_expired(&ctx), "post-heal passes renewed the lease");
                p.stop_replicator();
            });
            sim.run();
        }
        // Passes at 10, 20 succeeded; 30–60 failed inside the partition;
        // passes resumed after the heal.
        assert!(pair.epoch() >= 4, "epoch {}", pair.epoch());
        assert!(!pair.promoted());
    }

    #[test]
    fn demoted_primary_reconciles_after_partition_heals() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) };
        let primary = NodeId(spec.gpu_nodes);
        let standby = NodeId(spec.gpu_nodes + 1);
        // The primary lands alone on the minority side; the client and the
        // standby stay connected on the majority side. Heals at 200 ms.
        let plan = FaultPlan::new(29).partition(
            vec![vec![primary], vec![NodeId(0), standby]],
            SimTime::from_millis(30),
            Some(SimTime::from_millis(200)),
        );
        let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
        let cfg = SmbServerConfig {
            authority_timeout: SimDuration::from_millis(50),
            ..Default::default()
        };
        let pair = SmbPair::new(rdma, cfg).unwrap();
        let mut sim = Simulation::new();
        {
            let p = pair.clone();
            sim.spawn("replicator", move |ctx| {
                p.run_replicator(&ctx, SimDuration::from_millis(10));
            });
        }
        let p = pair.clone();
        sim.spawn("w", move |ctx| {
            let client = crate::SmbClient::with_failover(p.clone(), NodeId(0));
            let policy = crate::RetryPolicy::with_seed(29);
            let key = client.create(&ctx, "wg", 4, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write_retrying(&ctx, &buf, &[1.0; 4], &policy).unwrap();
            // A write the replicator never ships: it lands at 25 ms, after
            // the pass at 20 ms, and the partition at 30 ms cuts the next
            // pass — the divergent state reconciliation must discard.
            ctx.sleep_until(SimTime::from_millis(25));
            let direct = crate::SmbClient::new(p.primary().clone(), NodeId(0));
            direct.write(&ctx, &buf, &[9.0; 4]).unwrap();
            // Inside the partition, past the lease: the retrying write
            // observes the severed path plus the expired lease, promotes
            // the standby and lands there at epoch 2.
            ctx.sleep_until(SimTime::from_millis(100));
            assert!(p.authority_expired(&ctx));
            client.write_retrying(&ctx, &buf, &[5.0; 4], &policy).unwrap();
            assert!(p.promoted());
            assert_eq!(p.fence_epoch(), 2);
            assert_eq!(client.carried_epoch(), 2);
            // After the heal the replicator's reconciliation watch runs:
            // the demoted primary drops its divergent [9.0] state and
            // resyncs the promoted side's [5.0].
            ctx.sleep_until(SimTime::from_millis(250));
            assert_eq!(p.reconcile_counts(), (1, 1));
            let (mr, _) = p.primary().segment(key).unwrap();
            let copy = p.primary().rdma().with_region(&mr, |b| b.to_vec()).unwrap();
            assert_eq!(copy, vec![5.0; 4], "demoted primary must adopt the new epoch's state");
        });
        sim.run();
        let stats = pair.primary().rdma().fabric().fault_injector().unwrap().stats();
        assert!(stats.partition_hits >= 1);
    }

    #[test]
    fn replicator_loop_stops_after_primary_crash() {
        use shmcaffe_simnet::fault::FaultPlan;
        use shmcaffe_simnet::SimTime;
        let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) };
        let primary_node = NodeId(spec.gpu_nodes);
        let plan = FaultPlan::new(9).crash_memory_server(primary_node, SimTime::from_millis(25));
        let rdma = RdmaFabric::new(Fabric::with_faults(spec, plan));
        let pair = SmbPair::new(rdma, SmbServerConfig::default()).unwrap();
        let p = pair.clone();
        let mut sim = Simulation::new();
        sim.spawn("replicator", move |ctx| {
            p.run_replicator(&ctx, SimDuration::from_millis(10));
            // Two clean passes (t=10, t=20) before the crash kills the third.
            assert_eq!(p.epoch(), 2);
        });
        // The sim terminates because the loop exits — no stop flag needed.
        sim.run();
    }
}
