//! 2-D convolution, fused im2col → packed GEMM.
//!
//! Layout conventions follow Caffe blobs:
//!
//! * inputs and outputs are `(N, C, H, W)` row-major,
//! * weights are `(C_out, C_in, KH, KW)`,
//! * the logical column matrix is `(C_in*KH*KW) x (H_out*W_out)` per image.
//!
//! Unlike BVLC Caffe (and this crate's earlier revisions), the column
//! matrix is **never materialised**. The packing step of the BLIS-style
//! gemm in [`crate::gemm`] already copies `op(B)` into `NR`-column panels;
//! the fused path replicates that panel layout with packers that read
//! elements *through the convolution geometry* straight out of the input
//! image ([`pack_conv_cols`]/[`pack_conv_cols_t`], hoisted-loop
//! specialisations of the generic accessor formulation `col_value`).
//! im2col thus happens inside the pack, one cache-resident panel at a
//! time, and the separate `col_rows x col_cols` scratch matrix — and the
//! memory traffic of writing and re-reading it — disappears.
//!
//! Parallelism is a fixed grid derived only from the geometry and batch
//! size, never from the thread count:
//!
//! * **forward** — tasks are `(image, NC-column strip)` cells; all
//!   `H_out*W_out` columns of a layer form one logical gemm, so wide conv
//!   outputs fan out over the column axis even when `C_out` is small;
//! * **backward** — `dW` tasks are `NC`-column blocks of the weight
//!   gradient (each folds the whole batch in image order, and each
//!   fuse-packs only its own slice of the transposed column matrix), `db`
//!   tasks are `MC`-row filter blocks, and `d_input` tasks are
//!   `(image, channel block)` cells. Every task writes a disjoint region
//!   (through [`parallel::SliceParts`]) and folds its own data in a fixed
//!   serial order, so results are **bit-identical** at any
//!   `SHMCAFFE_THREADS` — and bit-identical to the retained reference path
//!   ([`conv2d_forward_ref`]/[`conv2d_backward_ref`]), which the property
//!   tests assert. The argument: packing is an exact copy, so only the
//!   `KC` k-block grid and the per-element write-back fold order determine
//!   the bits, and both are shared with the reference gemm
//!   (`x + y == y + x` bitwise for IEEE adds, `1.0 * x == x`).
//!
//! Scratch (packed panels, the backward `d_col` strip) comes from the
//! per-thread [`crate::workspace`] arena, so steady-state forward/backward
//! performs zero heap allocations (asserted by `tests/alloc_free.rs`).

use crate::gemm::{
    blocks, micro_kernel_dispatch, pack_cols_with, pack_rows_with, KC, MC, MR, NC, NR,
};
use crate::parallel::{self, elemwise_chunk, SliceParts, Task};
use crate::workspace::{self, Tag};
use crate::TensorError;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical zero padding.
    pub pad_h: usize,
    /// Horizontal zero padding.
    pub pad_w: usize,
}

impl Conv2dGeometry {
    /// Square-kernel convenience constructor.
    pub fn square(
        in_channels: usize,
        in_hw: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Conv2dGeometry {
            in_channels,
            in_h: in_hw,
            in_w: in_hw,
            kernel_h: kernel,
            kernel_w: kernel,
            stride_h: stride,
            stride_w: stride,
            pad_h: pad,
            pad_w: pad,
        }
    }

    /// Output height `(H + 2*pad - KH) / stride + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if the window does not fit.
    pub fn out_h(&self) -> Result<usize, TensorError> {
        out_extent(self.in_h, self.kernel_h, self.stride_h, self.pad_h)
    }

    /// Output width `(W + 2*pad - KW) / stride + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if the window does not fit.
    pub fn out_w(&self) -> Result<usize, TensorError> {
        out_extent(self.in_w, self.kernel_w, self.stride_w, self.pad_w)
    }

    /// Rows of the logical column matrix: `C_in * KH * KW`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the logical column matrix: `H_out * W_out`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadGeometry`] if the window does not fit.
    pub fn col_cols(&self) -> Result<usize, TensorError> {
        Ok(self.out_h()? * self.out_w()?)
    }

    /// Elements of one input image: `C_in * H * W`.
    pub fn in_len(&self) -> usize {
        self.in_channels * self.in_h * self.in_w
    }
}

fn out_extent(
    input: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> Result<usize, TensorError> {
    if stride == 0 {
        return Err(TensorError::BadGeometry("stride must be positive".into()));
    }
    let padded = input + 2 * pad;
    if kernel == 0 || kernel > padded {
        return Err(TensorError::BadGeometry(format!(
            "kernel {kernel} does not fit input {input} with pad {pad}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Element `(r, j)` of the logical im2col matrix of `image`, read through
/// the geometry: row `r` encodes `(channel, kh, kw)`, column `j` encodes
/// `(oh, ow)`, and out-of-bounds taps are the implicit zero padding.
///
/// The executable specification of the fused packing: [`pack_conv_cols`]
/// and [`pack_conv_cols_t`] must (and do, per the unit tests) produce
/// exactly these values, and it must agree index-for-index with
/// [`im2col`].
#[cfg_attr(not(test), allow(dead_code))]
#[inline(always)]
fn col_value(geom: &Conv2dGeometry, image: &[f32], out_w: usize, r: usize, j: usize) -> f32 {
    let khw = geom.kernel_h * geom.kernel_w;
    let c = r / khw;
    let k = r % khw;
    let kh = k / geom.kernel_w;
    let kw = k % geom.kernel_w;
    let oh = j / out_w;
    let ow = j % out_w;
    let ih = (oh * geom.stride_h + kh) as isize - geom.pad_h as isize;
    let iw = (ow * geom.stride_w + kw) as isize - geom.pad_w as isize;
    if ih >= 0 && iw >= 0 && (ih as usize) < geom.in_h && (iw as usize) < geom.in_w {
        image[(c * geom.in_h + ih as usize) * geom.in_w + iw as usize]
    } else {
        0.0
    }
}

/// The fused im2col pack: copies rows `[pc, pc + kcb)` x columns
/// `[j0, j0 + jn)` of the logical column matrix into `NR`-column panels,
/// in exactly the layout of [`pack_cols_with`] and with exactly the values
/// of [`col_value`] — packing is index math plus copies, so the fast and
/// generic formulations are bitwise interchangeable.
///
/// The win over handing `col_value` to the generic packer is hoisting:
/// the `(channel, kh, kw)` decomposition costs one division pair per
/// *row*, not three per element, and the `(oh, ow)` walk across a row is
/// incremental (two adds and a wrap test per element).
#[allow(clippy::too_many_arguments)]
fn pack_conv_cols(
    geom: &Conv2dGeometry,
    image: &[f32],
    out_w: usize,
    pc: usize,
    kcb: usize,
    j0: usize,
    jn: usize,
    out: &mut [f32],
) {
    let khw = geom.kernel_h * geom.kernel_w;
    let chan_len = geom.in_h * geom.in_w;
    let (in_h, in_w) = (geom.in_h as isize, geom.in_w as isize);
    let (stride_h, stride_w) = (geom.stride_h as isize, geom.stride_w as isize);
    let n_panels = jn.div_ceil(NR);
    for pp in 0..kcb {
        let r = pc + pp;
        let c = r / khw;
        let k = r % khw;
        let kh = (k / geom.kernel_w) as isize - geom.pad_h as isize;
        let kw = (k % geom.kernel_w) as isize - geom.pad_w as isize;
        let chan = &image[c * chan_len..(c + 1) * chan_len];
        let mut ow = j0 % out_w;
        let mut ih = (j0 / out_w) as isize * stride_h + kh;
        let mut iw = ow as isize * stride_w + kw;
        for jp in 0..n_panels {
            let cols = NR.min(jn - jp * NR);
            let base = jp * kcb * NR + pp * NR;
            let dst = &mut out[base..base + NR];
            dst[cols..].iter_mut().for_each(|d| *d = 0.0);
            // Walk the window in segments that share one input row (`ih`
            // is constant until the output-row wrap), so the bounds tests
            // hoist out of the element loop and the stride-1 interior
            // becomes a contiguous copy.
            let mut jj = 0;
            while jj < cols {
                let seg = (cols - jj).min(out_w - ow);
                let d = &mut dst[jj..jj + seg];
                if ih < 0 || ih >= in_h {
                    d.iter_mut().for_each(|v| *v = 0.0);
                    iw += seg as isize * stride_w;
                } else {
                    let row = &chan[(ih as usize) * geom.in_w..][..geom.in_w];
                    if stride_w == 1 {
                        let lz = (-iw).clamp(0, seg as isize) as usize;
                        let ve = (in_w - iw).clamp(0, seg as isize) as usize;
                        d[..lz].iter_mut().for_each(|v| *v = 0.0);
                        d[lz..ve].copy_from_slice(
                            &row[(iw + lz as isize) as usize..(iw + ve as isize) as usize],
                        );
                        d[ve..].iter_mut().for_each(|v| *v = 0.0);
                        iw += seg as isize;
                    } else {
                        for v in d.iter_mut() {
                            *v = if iw >= 0 && iw < in_w { row[iw as usize] } else { 0.0 };
                            iw += stride_w;
                        }
                    }
                }
                jj += seg;
                ow += seg;
                if ow == out_w {
                    ow = 0;
                    iw = kw;
                    ih += stride_h;
                }
            }
        }
    }
}

/// The fused pack of the *transposed* column matrix, for the `dW` gemm
/// (`dW += dY · colᵀ`): panel columns `[j0, j0 + jn)` run along the
/// `C_in*KH*KW` axis, panel rows `[pc, pc + kcb)` along the spatial axis.
/// Bitwise equal to packing `|p, j| col_value(…, j, p)` through
/// [`pack_cols_with`]; the per-column `(channel, kh, kw)` decomposition is
/// hoisted to once per panel and the spatial walk is incremental.
#[allow(clippy::too_many_arguments)]
fn pack_conv_cols_t(
    geom: &Conv2dGeometry,
    image: &[f32],
    out_w: usize,
    pc: usize,
    kcb: usize,
    j0: usize,
    jn: usize,
    out: &mut [f32],
) {
    let khw = geom.kernel_h * geom.kernel_w;
    let chan_len = geom.in_h * geom.in_w;
    let (in_h, in_w) = (geom.in_h as isize, geom.in_w as isize);
    let (stride_h, stride_w) = (geom.stride_h as isize, geom.stride_w as isize);
    for jp in 0..jn.div_ceil(NR) {
        let jb = j0 + jp * NR;
        let cols = NR.min(j0 + jn - jb);
        let mut offs = [0isize; NR];
        let mut khs = [0isize; NR];
        let mut kws = [0isize; NR];
        for jj in 0..cols {
            let r = jb + jj;
            let k = r % khw;
            let kh = (k / geom.kernel_w) as isize - geom.pad_h as isize;
            let kw = (k % geom.kernel_w) as isize - geom.pad_w as isize;
            khs[jj] = kh;
            kws[jj] = kw;
            // Tap offset relative to `oy*in_w + ox`; only dereferenced
            // once the (ih, iw) range tests pass.
            offs[jj] = ((r / khw) * chan_len) as isize + kh * in_w + kw;
        }
        // A spatial position is "safe" when every tap of this panel lands
        // in range; the whole interior then skips the per-tap tests.
        let kh_lo = khs[..cols].iter().copied().min().unwrap_or(0);
        let kh_hi = khs[..cols].iter().copied().max().unwrap_or(0);
        let kw_lo = kws[..cols].iter().copied().min().unwrap_or(0);
        let kw_hi = kws[..cols].iter().copied().max().unwrap_or(0);
        let panel = &mut out[jp * kcb * NR..(jp + 1) * kcb * NR];
        let mut ow = pc % out_w;
        let mut oy = (pc / out_w) as isize * stride_h;
        for dst in panel.chunks_exact_mut(NR) {
            let ox = ow as isize * stride_w;
            dst[cols..].iter_mut().for_each(|d| *d = 0.0);
            if oy + kh_lo >= 0 && oy + kh_hi < in_h && ox + kw_lo >= 0 && ox + kw_hi < in_w {
                let pos = oy * in_w + ox;
                for (jj, d) in dst[..cols].iter_mut().enumerate() {
                    *d = image[(offs[jj] + pos) as usize];
                }
            } else {
                let pos = oy * in_w + ox;
                for (jj, d) in dst[..cols].iter_mut().enumerate() {
                    let ih = oy + khs[jj];
                    let iw = ox + kws[jj];
                    *d = if ih >= 0 && ih < in_h && iw >= 0 && iw < in_w {
                        image[(offs[jj] + pos) as usize]
                    } else {
                        0.0
                    };
                }
            }
            ow += 1;
            if ow == out_w {
                ow = 0;
                oy += stride_h;
            }
        }
    }
}

/// Unrolls one image `(C, H, W)` into the materialised column matrix.
///
/// The fused kernels never call this; it remains as the reference
/// formulation (see [`conv2d_forward_ref`]) and for adjoint tests.
/// `col` must have `geom.col_rows() * geom.col_cols()` elements.
///
/// # Panics
///
/// Panics if buffer sizes do not match the geometry.
pub fn im2col(geom: &Conv2dGeometry, image: &[f32], col: &mut [f32]) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    assert_eq!(image.len(), geom.in_len(), "image buffer size mismatch");
    assert_eq!(col.len(), geom.col_rows() * out_h * out_w, "col buffer size mismatch");

    let mut col_idx = 0;
    for c in 0..geom.in_channels {
        let chan = &image[c * geom.in_h * geom.in_w..(c + 1) * geom.in_h * geom.in_w];
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                for oh in 0..out_h {
                    let ih = (oh * geom.stride_h + kh) as isize - geom.pad_h as isize;
                    for ow in 0..out_w {
                        let iw = (ow * geom.stride_w + kw) as isize - geom.pad_w as isize;
                        col[col_idx] = if ih >= 0
                            && iw >= 0
                            && (ih as usize) < geom.in_h
                            && (iw as usize) < geom.in_w
                        {
                            chan[ih as usize * geom.in_w + iw as usize]
                        } else {
                            0.0
                        };
                        col_idx += 1;
                    }
                }
            }
        }
    }
}

/// Accumulates a column matrix back into an image (adjoint of [`im2col`]).
///
/// The image buffer is *not* cleared; contributions are added, which is what
/// the backward pass needs when accumulating input gradients.
///
/// # Panics
///
/// Panics if buffer sizes do not match the geometry.
pub fn col2im(geom: &Conv2dGeometry, col: &[f32], image: &mut [f32]) {
    assert_eq!(image.len(), geom.in_len(), "image buffer size mismatch");
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    assert_eq!(col.len(), geom.col_rows() * out_h * out_w, "col buffer size mismatch");
    col2im_rows(geom, out_h, out_w, geom.in_channels, col, image);
}

/// [`col2im`] restricted to a contiguous block of `channels` input
/// channels: `col` holds the `channels * KH * KW` column-matrix rows for
/// those channels, `image` the matching `(channels, H, W)` slice. The
/// per-element accumulation order is exactly that of the full [`col2im`]
/// (each image element only ever receives contributions from its own
/// channel's rows), which keeps the blocked backward path bit-identical.
fn col2im_rows(
    geom: &Conv2dGeometry,
    out_h: usize,
    out_w: usize,
    channels: usize,
    col: &[f32],
    image: &mut [f32],
) {
    let mut col_idx = 0;
    for c in 0..channels {
        let base = c * geom.in_h * geom.in_w;
        for kh in 0..geom.kernel_h {
            for kw in 0..geom.kernel_w {
                for oh in 0..out_h {
                    let ih = (oh * geom.stride_h + kh) as isize - geom.pad_h as isize;
                    for ow in 0..out_w {
                        let iw = (ow * geom.stride_w + kw) as isize - geom.pad_w as isize;
                        if ih >= 0
                            && iw >= 0
                            && (ih as usize) < geom.in_h
                            && (iw as usize) < geom.in_w
                        {
                            image[base + ih as usize * geom.in_w + iw as usize] += col[col_idx];
                        }
                        col_idx += 1;
                    }
                }
            }
        }
    }
}

/// Shared write-back: add `alpha == 1` micro-tile rows into `c_row`,
/// either overwriting (first k-block, beta = 0 semantics) or accumulating.
#[inline(always)]
fn store_row(c_row: &mut [f32], acc_row: &[f32], overwrite: bool) {
    if overwrite {
        for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
            *cv = *av;
        }
    } else {
        for (cv, av) in c_row.iter_mut().zip(acc_row.iter()) {
            *cv += *av;
        }
    }
}

/// Convolution forward for a batch (fused im2col → packed gemm).
///
/// * `input`: `(N, C_in, H, W)` flattened,
/// * `weights`: `(C_out, C_in*KH*KW)` flattened,
/// * `bias`: length `C_out` (may be empty for no bias),
/// * `output`: `(N, C_out, H_out, W_out)` flattened.
///
/// The weights are packed once per call; each `(image, NC-column strip)`
/// grid cell then packs its input patches directly from the image and
/// sweeps the micro-kernel, writing its disjoint strip of the output. All
/// scratch comes from the per-thread [`crate::workspace`] arena. See the
/// module docs for the determinism contract.
///
/// # Panics
///
/// Panics on buffer size mismatches.
pub fn conv2d_forward(
    geom: &Conv2dGeometry,
    batch: usize,
    out_channels: usize,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    output: &mut [f32],
) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let spatial = out_h * out_w;
    let in_len = geom.in_len();
    let out_len = out_channels * spatial;
    let kdim = geom.col_rows();
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(output.len(), batch * out_len, "output size mismatch");
    assert_eq!(weights.len(), out_channels * kdim, "weight size mismatch");
    assert!(bias.is_empty() || bias.len() == out_channels, "bias size mismatch");
    if batch == 0 || out_channels == 0 {
        return;
    }

    let kc0 = KC.min(kdim);
    let m_panels = out_channels.div_ceil(MR);
    // Pack the filter matrix once, k-block-major: for each KC block, all
    // MR-row panels of that block back to back. Every grid cell reads it.
    workspace::with_f32(Tag::ConvPackA, m_panels * MR * kdim, |packed_w| {
        let mut off = 0;
        for (pc, kcb) in blocks(kdim, KC) {
            pack_rows_with(
                0,
                out_channels,
                pc,
                kcb,
                |i, p| weights[i * kdim + p],
                &mut packed_w[off..off + m_panels * MR * kcb],
            );
            off += m_panels * MR * kcb;
        }
        let packed_w = &packed_w[..];
        let out = SliceParts::new(&mut output[..batch * out_len]);
        let out = &out;

        // One grid cell: image `n`, output columns `[jc, jc + ncb)`.
        let cell = move |n: usize, jc: usize, ncb: usize| {
            let image = &input[n * in_len..(n + 1) * in_len];
            let out_base = n * out_len;
            let ncb_panels = ncb.div_ceil(NR);
            workspace::with_f32(Tag::ConvPackB, kc0 * ncb_panels * NR, |packed_b| {
                let mut acc = [[0.0f32; NR]; MR];
                let mut a_off = 0;
                for (pc, kcb) in blocks(kdim, KC) {
                    // The fused im2col: pack input patches straight into
                    // NR-column panels through the geometry.
                    pack_conv_cols(
                        geom,
                        image,
                        out_w,
                        pc,
                        kcb,
                        jc,
                        ncb,
                        &mut packed_b[..kcb * ncb_panels * NR],
                    );
                    let first = pc == 0;
                    for ip in 0..m_panels {
                        let i0 = ip * MR;
                        let rows = MR.min(out_channels - i0);
                        let a_panel = &packed_w[a_off + ip * kcb * MR..a_off + (ip + 1) * kcb * MR];
                        for jp in 0..ncb_panels {
                            let j0 = jc + jp * NR;
                            let cols = NR.min(jc + ncb - j0);
                            let b_panel = &packed_b[jp * kcb * NR..(jp + 1) * kcb * NR];
                            micro_kernel_dispatch(kcb, a_panel, b_panel, &mut acc);
                            for (ii, acc_row) in acc.iter().enumerate().take(rows) {
                                let c_row = out.part(out_base + (i0 + ii) * spatial + j0, cols);
                                store_row(c_row, acc_row, first);
                            }
                            acc.iter_mut().for_each(|r| r.iter_mut().for_each(|v| *v = 0.0));
                        }
                    }
                    a_off += m_panels * MR * kcb;
                }
            });
            if !bias.is_empty() {
                for (ci, &bv) in bias.iter().enumerate() {
                    for v in out.part(out_base + ci * spatial + jc, ncb) {
                        *v += bv;
                    }
                }
            }
        };

        let strips = spatial.div_ceil(NC);
        if parallel::current_threads() <= 1 || batch * strips <= 1 {
            for n in 0..batch {
                for (jc, ncb) in blocks(spatial, NC) {
                    cell(n, jc, ncb);
                }
            }
        } else {
            let cell = &cell;
            let tasks: Vec<Task<'_>> = (0..batch)
                .flat_map(|n| {
                    blocks(spatial, NC)
                        .map(move |(jc, ncb)| -> Task<'_> { Box::new(move || cell(n, jc, ncb)) })
                })
                .collect();
            parallel::run_tasks(tasks);
        }
    });
}

/// Convolution backward for a batch (fused, never materialising im2col).
///
/// Computes weight/bias gradients (accumulated into `d_weights`/`d_bias`)
/// and, when `d_input` is non-empty, the input gradient (overwritten).
///
/// The grid: `dW` tasks own `NC`-column blocks of the weight gradient and
/// `db` tasks `MC`-row filter blocks; both fold the whole batch in image
/// order (so the reduction order never depends on the thread count).
/// `d_input` tasks own `(image, channel block)` cells,
/// staging `Wᵀ·dY` rows in a workspace strip and scattering them with the
/// blocked col2im. See the module docs for the bit-identity argument.
///
/// # Panics
///
/// Panics on buffer size mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    geom: &Conv2dGeometry,
    batch: usize,
    out_channels: usize,
    input: &[f32],
    weights: &[f32],
    d_output: &[f32],
    d_weights: &mut [f32],
    d_bias: &mut [f32],
    d_input: &mut [f32],
) {
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let spatial = out_h * out_w;
    let in_len = geom.in_len();
    let out_len = out_channels * spatial;
    let kdim = geom.col_rows();
    let khw = geom.kernel_h * geom.kernel_w;
    let chan_len = geom.in_h * geom.in_w;
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(d_output.len(), batch * out_len, "d_output size mismatch");
    assert_eq!(d_weights.len(), out_channels * kdim, "d_weights size mismatch");
    assert!(d_bias.is_empty() || d_bias.len() == out_channels, "d_bias size mismatch");
    assert!(d_input.is_empty() || d_input.len() == batch * in_len, "d_input size mismatch");

    let want_dx = !d_input.is_empty();
    if want_dx {
        let chunk = elemwise_chunk(d_input.len());
        parallel::par_chunks_mut(d_input, chunk, |_, c| c.iter_mut().for_each(|v| *v = 0.0));
    }
    if batch == 0 || out_channels == 0 {
        return;
    }

    let kc_sp = KC.min(spatial);
    let m_panels = out_channels.div_ceil(MR);
    // d_input channel-block granularity: enough channels that a block's
    // `channels * KH * KW` d_col rows are on the order of one MC row
    // panel, but never more than ~8 blocks per image — every block
    // re-packs the image's dY panels, so the block count bounds that
    // redundancy. Derived from geometry only, never the thread count.
    let cb = (MC / khw).max(geom.in_channels.div_ceil(8)).max(1);

    let has_bias = !d_bias.is_empty();
    let dw = SliceParts::new(d_weights);
    let dw = &dw;
    let db = SliceParts::new(d_bias);
    let db = &db;
    let dx = SliceParts::new(d_input);
    let dx = &dx;

    // One dW task: columns `[j0, j0 + jn)` of the `(C_out, C_in*KH*KW)`
    // weight gradient, whole batch, image order.
    //
    // dW[:, j0..] += dY_n · col_nᵀ[:, j0..] for each n ascending, k-axis =
    // spatial. Blocking this gemm along its *N* axis means each task
    // fuse-packs only its own slice of the transposed column matrix — the
    // expensive geometry pack is never repeated across tasks — while only
    // the cheap contiguous dY row pack is. Write-back always accumulates:
    // `d_weights` carries the caller's running gradient (beta = 1), and
    // `x + y` is bitwise commutative, so this equals the reference's
    // per-image `gemm(…, beta = 1.0)` fold.
    let dw_cell = |j0: usize, jn: usize| {
        let jn_panels = jn.div_ceil(NR);
        workspace::with_f32(Tag::ConvPackA, kc_sp * m_panels * MR, |packed_a| {
            workspace::with_f32(Tag::ConvPackB, kc_sp * jn_panels * NR, |packed_b| {
                let mut acc = [[0.0f32; NR]; MR];
                for n in 0..batch {
                    let image = &input[n * in_len..(n + 1) * in_len];
                    let dy = &d_output[n * out_len..(n + 1) * out_len];
                    for (pc, kcb) in blocks(spatial, KC) {
                        pack_rows_with(
                            0,
                            out_channels,
                            pc,
                            kcb,
                            |i, p| dy[i * spatial + p],
                            &mut packed_a[..kcb * m_panels * MR],
                        );
                        pack_conv_cols_t(
                            geom,
                            image,
                            out_w,
                            pc,
                            kcb,
                            j0,
                            jn,
                            &mut packed_b[..kcb * jn_panels * NR],
                        );
                        for ip in 0..m_panels {
                            let i0 = ip * MR;
                            let rows = MR.min(out_channels - i0);
                            let a_panel = &packed_a[ip * kcb * MR..(ip + 1) * kcb * MR];
                            for jp in 0..jn_panels {
                                let jb = j0 + jp * NR;
                                let cols = NR.min(j0 + jn - jb);
                                let b_panel = &packed_b[jp * kcb * NR..(jp + 1) * kcb * NR];
                                micro_kernel_dispatch(kcb, a_panel, b_panel, &mut acc);
                                for (ii, acc_row) in acc.iter().enumerate().take(rows) {
                                    let c_row = dw.part((i0 + ii) * kdim + jb, cols);
                                    store_row(c_row, acc_row, false);
                                }
                                acc.iter_mut().for_each(|r| r.iter_mut().for_each(|v| *v = 0.0));
                            }
                        }
                    }
                }
            });
        });
    };

    // One db task: filter rows `[i0, i0 + il)`;
    // db[c] += Σ_n (serial spatial sum of dY_n[c]) in image order.
    let db_cell = |i0: usize, il: usize| {
        for ci in i0..i0 + il {
            let dbv = &mut db.part(ci, 1)[0];
            for n in 0..batch {
                let dy = &d_output[n * out_len + ci * spatial..][..spatial];
                let mut t = 0.0f32;
                for &v in dy {
                    t += v;
                }
                *dbv += t;
            }
        }
    };

    // One d_input task: image `n`, input channels `[c0, c0 + cl)`.
    //
    // Stages d_col rows `[c0*KH*KW, (c0+cl)*KH*KW)` = Wᵀ[rows] · dY_n
    // (k-axis = C_out, beta = 0 semantics) in a workspace strip, then
    // scatters them with the blocked col2im. Restricting the gemm to a row
    // block and col2im to a channel block changes neither's per-element
    // fold order.
    let dx_cell = |n: usize, c0: usize, cl: usize| {
        let dy = &d_output[n * out_len..(n + 1) * out_len];
        let rl = cl * khw;
        let rl_panels = rl.div_ceil(MR);
        let sp_panels = spatial.div_ceil(NR);
        let kc_oc = KC.min(out_channels);
        let r0 = c0 * khw;
        workspace::with_f32(Tag::ConvDcol, rl * spatial, |dcol| {
            workspace::with_f32(Tag::ConvPackA, kc_oc * rl_panels * MR, |packed_a| {
                workspace::with_f32(Tag::ConvPackB, kc_oc * sp_panels * NR, |packed_b| {
                    let mut acc = [[0.0f32; NR]; MR];
                    for (pc, kcb) in blocks(out_channels, KC) {
                        pack_rows_with(
                            r0,
                            rl,
                            pc,
                            kcb,
                            |i, p| weights[p * kdim + i],
                            &mut packed_a[..kcb * rl_panels * MR],
                        );
                        pack_cols_with(
                            pc,
                            kcb,
                            0,
                            spatial,
                            |p, j| dy[p * spatial + j],
                            &mut packed_b[..kcb * sp_panels * NR],
                        );
                        let first = pc == 0;
                        for ip in 0..rl_panels {
                            let rr0 = ip * MR;
                            let rows = MR.min(rl - rr0);
                            let a_panel = &packed_a[ip * kcb * MR..(ip + 1) * kcb * MR];
                            for jp in 0..sp_panels {
                                let j0 = jp * NR;
                                let cols = NR.min(spatial - j0);
                                let b_panel = &packed_b[jp * kcb * NR..(jp + 1) * kcb * NR];
                                micro_kernel_dispatch(kcb, a_panel, b_panel, &mut acc);
                                for (ii, acc_row) in acc.iter().enumerate().take(rows) {
                                    let c_row = &mut dcol[(rr0 + ii) * spatial + j0..][..cols];
                                    store_row(c_row, acc_row, first);
                                }
                                acc.iter_mut().for_each(|r| r.iter_mut().for_each(|v| *v = 0.0));
                            }
                        }
                    }
                });
            });
            let image = dx.part(n * in_len + c0 * chan_len, cl * chan_len);
            col2im_rows(geom, out_h, out_w, cl, &dcol[..rl * spatial], image);
        });
    };

    let dw_blocks = kdim.div_ceil(NC);
    let db_blocks = if has_bias { out_channels.div_ceil(MC) } else { 0 };
    let dx_blocks = if want_dx { geom.in_channels.div_ceil(cb) } else { 0 };
    if parallel::current_threads() <= 1 || dw_blocks + db_blocks + batch * dx_blocks <= 1 {
        for (j0, jn) in blocks(kdim, NC) {
            dw_cell(j0, jn);
        }
        if has_bias {
            for (i0, il) in blocks(out_channels, MC) {
                db_cell(i0, il);
            }
        }
        if want_dx {
            for n in 0..batch {
                for (c0, cl) in blocks(geom.in_channels, cb) {
                    dx_cell(n, c0, cl);
                }
            }
        }
    } else {
        let dw_cell = &dw_cell;
        let db_cell = &db_cell;
        let dx_cell = &dx_cell;
        let mut tasks: Vec<Task<'_>> = blocks(kdim, NC)
            .map(|(j0, jn)| -> Task<'_> { Box::new(move || dw_cell(j0, jn)) })
            .collect();
        if has_bias {
            tasks.extend(
                blocks(out_channels, MC)
                    .map(|(i0, il)| -> Task<'_> { Box::new(move || db_cell(i0, il)) }),
            );
        }
        if want_dx {
            tasks.extend((0..batch).flat_map(|n| {
                blocks(geom.in_channels, cb)
                    .map(move |(c0, cl)| -> Task<'_> { Box::new(move || dx_cell(n, c0, cl)) })
            }));
        }
        parallel::run_tasks(tasks);
    }
}

/// Reference convolution forward: materialised [`im2col`] + [`crate::gemm`].
///
/// This is the pre-fusion formulation, retained as the bit-identity oracle
/// for the fused path (`tests/fused_conv.rs`) and as the baseline the
/// kernel benchmarks measure fusion against. `col_buf` must hold
/// `col_rows * col_cols` elements.
///
/// # Panics
///
/// Panics on buffer size mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward_ref(
    geom: &Conv2dGeometry,
    batch: usize,
    out_channels: usize,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    output: &mut [f32],
    col_buf: &mut [f32],
) {
    use crate::gemm::{gemm, Transpose};
    let out_h = geom.out_h().expect("invalid geometry");
    let out_w = geom.out_w().expect("invalid geometry");
    let spatial = out_h * out_w;
    let in_len = geom.in_len();
    let out_len = out_channels * spatial;
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(output.len(), batch * out_len, "output size mismatch");
    assert_eq!(weights.len(), out_channels * geom.col_rows(), "weight size mismatch");
    assert!(bias.is_empty() || bias.len() == out_channels, "bias size mismatch");
    assert_eq!(col_buf.len(), geom.col_rows() * spatial, "col buffer size mismatch");

    for (image, out_image) in input.chunks(in_len).zip(output.chunks_mut(out_len)) {
        im2col(geom, image, col_buf);
        // (C_out x K) * (K x spatial) = C_out x spatial
        gemm(
            Transpose::No,
            Transpose::No,
            out_channels,
            spatial,
            geom.col_rows(),
            1.0,
            weights,
            col_buf,
            0.0,
            out_image,
        );
        if !bias.is_empty() {
            for (c, &b) in bias.iter().enumerate() {
                for v in &mut out_image[c * spatial..(c + 1) * spatial] {
                    *v += b;
                }
            }
        }
    }
}

/// Reference convolution backward: materialised im2col, per-image gemms
/// accumulated directly (`beta = 1`) in image order. Retained as the
/// bit-identity oracle for the fused [`conv2d_backward`].
///
/// # Panics
///
/// Panics on buffer size mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_ref(
    geom: &Conv2dGeometry,
    batch: usize,
    out_channels: usize,
    input: &[f32],
    weights: &[f32],
    d_output: &[f32],
    d_weights: &mut [f32],
    d_bias: &mut [f32],
    d_input: &mut [f32],
    col_buf: &mut [f32],
) {
    use crate::gemm::{gemm, Transpose};
    let spatial = geom.col_cols().expect("invalid geometry");
    let in_len = geom.in_len();
    let out_len = out_channels * spatial;
    assert_eq!(input.len(), batch * in_len, "input size mismatch");
    assert_eq!(d_output.len(), batch * out_len, "d_output size mismatch");
    assert_eq!(d_weights.len(), out_channels * geom.col_rows(), "d_weights size mismatch");
    assert!(d_bias.is_empty() || d_bias.len() == out_channels, "d_bias size mismatch");
    assert!(d_input.is_empty() || d_input.len() == batch * in_len, "d_input size mismatch");
    assert_eq!(col_buf.len(), geom.col_rows() * spatial, "col buffer size mismatch");

    if !d_input.is_empty() {
        d_input.iter_mut().for_each(|v| *v = 0.0);
    }
    for n in 0..batch {
        let image = &input[n * in_len..(n + 1) * in_len];
        let d_out_image = &d_output[n * out_len..(n + 1) * out_len];

        // dW += dY_n * col_n^T : (C_out x spatial) * (spatial x K)
        im2col(geom, image, col_buf);
        gemm(
            Transpose::No,
            Transpose::Yes,
            out_channels,
            geom.col_rows(),
            spatial,
            1.0,
            d_out_image,
            col_buf,
            1.0,
            d_weights,
        );
        for (c, db) in d_bias.iter_mut().enumerate() {
            *db += d_out_image[c * spatial..(c + 1) * spatial].iter().sum::<f32>();
        }
        if !d_input.is_empty() {
            // d_col = W^T * dY : (K x C_out) * (C_out x spatial)
            gemm(
                Transpose::Yes,
                Transpose::No,
                geom.col_rows(),
                spatial,
                out_channels,
                1.0,
                weights,
                d_out_image,
                0.0,
                col_buf,
            );
            col2im(geom, col_buf, &mut d_input[n * in_len..(n + 1) * in_len]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_extent_formula() {
        // 5x5 input, 3x3 kernel, stride 1, no pad -> 3x3 output.
        let g = Conv2dGeometry::square(1, 5, 3, 1, 0);
        assert_eq!(g.out_h().unwrap(), 3);
        // pad 1 -> same-size output.
        let g = Conv2dGeometry::square(1, 5, 3, 1, 1);
        assert_eq!(g.out_h().unwrap(), 5);
        // stride 2.
        let g = Conv2dGeometry::square(1, 5, 3, 2, 0);
        assert_eq!(g.out_h().unwrap(), 2);
    }

    #[test]
    fn bad_geometry_is_reported() {
        let g = Conv2dGeometry::square(1, 2, 5, 1, 0);
        assert!(g.out_h().is_err());
        let g = Conv2dGeometry { stride_h: 0, ..Conv2dGeometry::square(1, 5, 3, 1, 0) };
        assert!(g.out_h().is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is the identity.
        let g = Conv2dGeometry::square(2, 3, 1, 1, 0);
        let image: Vec<f32> = (0..18).map(|v| v as f32).collect();
        let mut col = vec![0.0; 18];
        im2col(&g, &image, &mut col);
        assert_eq!(col, image);
    }

    #[test]
    fn im2col_known_patch() {
        // 3x3 image, 2x2 kernel, stride 1, no pad -> 2x2 output, 4 rows.
        let g = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let image = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let mut col = vec![0.0; 4 * 4];
        im2col(&g, &image, &mut col);
        // Row 0 = kernel offset (0,0) over outputs: 1,2,4,5
        assert_eq!(&col[0..4], &[1., 2., 4., 5.]);
        // Row 3 = kernel offset (1,1): 5,6,8,9
        assert_eq!(&col[12..16], &[5., 6., 8., 9.]);
    }

    #[test]
    fn col_value_agrees_with_im2col() {
        let g = Conv2dGeometry {
            in_channels: 3,
            in_h: 5,
            in_w: 4,
            kernel_h: 3,
            kernel_w: 2,
            stride_h: 2,
            stride_w: 1,
            pad_h: 1,
            pad_w: 0,
        };
        let out_h = g.out_h().unwrap();
        let out_w = g.out_w().unwrap();
        let image: Vec<f32> = (0..g.in_len()).map(|i| (i as f32 * 0.7).sin()).collect();
        let mut col = vec![0.0; g.col_rows() * out_h * out_w];
        im2col(&g, &image, &mut col);
        for r in 0..g.col_rows() {
            for j in 0..out_h * out_w {
                assert_eq!(
                    col[r * out_h * out_w + j].to_bits(),
                    col_value(&g, &image, out_w, r, j).to_bits(),
                    "mismatch at row {r} col {j}"
                );
            }
        }
    }

    /// The hoisted packers are bitwise the generic `pack_cols_with` over
    /// `col_value`, for straight and transposed reads, across k-blocks
    /// and column windows that end mid-panel.
    #[test]
    fn fused_packers_match_generic_accessor_pack() {
        let g = Conv2dGeometry {
            in_channels: 3,
            in_h: 7,
            in_w: 5,
            kernel_h: 3,
            kernel_w: 2,
            stride_h: 2,
            stride_w: 1,
            pad_h: 1,
            pad_w: 1,
        };
        let out_w = g.out_w().unwrap();
        let spatial = g.col_cols().unwrap();
        let kdim = g.col_rows();
        let image: Vec<f32> = (0..g.in_len()).map(|i| (i as f32 * 0.43).sin()).collect();

        // Straight pack: rows = kdim, columns = spatial.
        for &(pc, kcb) in &[(0, kdim.min(5)), (4, kdim - 4)] {
            for &(j0, jn) in &[(0, spatial), (8, spatial - 8), (0, 3)] {
                let len = kcb * jn.div_ceil(NR) * NR;
                let mut want = vec![f32::NAN; len];
                pack_cols_with(
                    pc,
                    kcb,
                    j0,
                    jn,
                    |p, j| col_value(&g, &image, out_w, p, j),
                    &mut want,
                );
                let mut got = vec![f32::NAN; len];
                pack_conv_cols(&g, &image, out_w, pc, kcb, j0, jn, &mut got);
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "straight pack diverged at pc={pc} kcb={kcb} j0={j0} jn={jn}"
                );
            }
        }
        // Transposed pack: rows = spatial, columns = kdim.
        for &(pc, kcb) in &[(0, spatial.min(7)), (3, spatial - 3)] {
            for &(j0, jn) in &[(0, kdim), (8, kdim - 8), (0, 5)] {
                let len = kcb * jn.div_ceil(NR) * NR;
                let mut want = vec![f32::NAN; len];
                pack_cols_with(
                    pc,
                    kcb,
                    j0,
                    jn,
                    |p, j| col_value(&g, &image, out_w, j, p),
                    &mut want,
                );
                let mut got = vec![f32::NAN; len];
                pack_conv_cols_t(&g, &image, out_w, pc, kcb, j0, jn, &mut got);
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "transposed pack diverged at pc={pc} kcb={kcb} j0={j0} jn={jn}"
                );
            }
        }
    }

    #[test]
    fn conv_forward_matches_manual() {
        // Single channel 3x3 image, one 2x2 kernel of ones -> sum pooling.
        let g = Conv2dGeometry::square(1, 3, 2, 1, 0);
        let input = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let weights = vec![1.0; 4];
        let bias = vec![0.5];
        let mut output = vec![0.0; 4];
        conv2d_forward(&g, 1, 1, &input, &weights, &bias, &mut output);
        assert_eq!(output, vec![12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn conv_forward_with_padding_zero_fills() {
        let g = Conv2dGeometry::square(1, 2, 3, 1, 1);
        let input = vec![1., 1., 1., 1.];
        let weights = vec![1.0; 9];
        let mut output = vec![0.0; 4];
        conv2d_forward(&g, 1, 1, &input, &weights, &[], &mut output);
        // Every 3x3 window over the padded 4x4 contains the full 2x2 block.
        assert_eq!(output, vec![4.0; 4]);
    }

    fn deterministic(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as f32 / 65536.0) - 0.5
            })
            .collect()
    }

    /// Fused forward/backward equal the materialised reference bitwise and
    /// stay bit-identical across thread counts (name keeps it in the Miri
    /// `parallel` filter of scripts/miri.sh).
    #[test]
    fn fused_conv_parallel_matches_reference_bitwise() {
        let g = Conv2dGeometry::square(3, 6, 3, 1, 1);
        let batch = 2;
        let oc = 5;
        let spatial = g.col_cols().unwrap();
        let input = deterministic(batch * g.in_len(), 1);
        let weights = deterministic(oc * g.col_rows(), 2);
        let bias = deterministic(oc, 3);
        let d_output = deterministic(batch * oc * spatial, 4);

        let mut col = vec![0.0; g.col_rows() * spatial];
        let mut out_ref = vec![0.0; batch * oc * spatial];
        conv2d_forward_ref(&g, batch, oc, &input, &weights, &bias, &mut out_ref, &mut col);
        let mut dw_ref = deterministic(weights.len(), 5);
        let mut db_ref = deterministic(oc, 6);
        let dw0 = dw_ref.clone();
        let db0 = db_ref.clone();
        let mut dx_ref = vec![0.0; input.len()];
        conv2d_backward_ref(
            &g,
            batch,
            oc,
            &input,
            &weights,
            &d_output,
            &mut dw_ref,
            &mut db_ref,
            &mut dx_ref,
            &mut col,
        );

        for threads in [1, 2, 4] {
            crate::parallel::with_threads(threads, || {
                let mut out = vec![0.0; out_ref.len()];
                conv2d_forward(&g, batch, oc, &input, &weights, &bias, &mut out);
                assert!(
                    out.iter().zip(out_ref.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "forward diverged at {threads} threads"
                );
                let mut dw = dw0.clone();
                let mut db = db0.clone();
                let mut dx = vec![0.0; input.len()];
                conv2d_backward(
                    &g, batch, oc, &input, &weights, &d_output, &mut dw, &mut db, &mut dx,
                );
                assert!(
                    dw.iter().zip(dw_ref.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "dW diverged at {threads} threads"
                );
                assert!(
                    db.iter().zip(db_ref.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "db diverged at {threads} threads"
                );
                assert!(
                    dx.iter().zip(dx_ref.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "d_input diverged at {threads} threads"
                );
            });
        }
    }

    /// Numerical gradient check of the full conv backward pass.
    #[test]
    fn conv_backward_matches_finite_difference() {
        let g = Conv2dGeometry::square(2, 4, 3, 1, 1);
        let batch = 2;
        let out_channels = 3;
        let in_len = g.in_len();
        let out_len = out_channels * g.col_cols().unwrap();

        let mut input: Vec<f32> =
            (0..batch * in_len).map(|i| ((i % 7) as f32 - 3.0) * 0.3).collect();
        let weights: Vec<f32> =
            (0..out_channels * g.col_rows()).map(|i| ((i % 5) as f32 - 2.0) * 0.1).collect();
        let bias = vec![0.1, -0.2, 0.3];
        let d_output: Vec<f32> =
            (0..batch * out_len).map(|i| ((i % 3) as f32 - 1.0) * 0.5).collect();

        let loss = |input: &[f32], weights: &[f32], bias: &[f32]| -> f32 {
            let mut output = vec![0.0; batch * out_len];
            conv2d_forward(&g, batch, out_channels, input, weights, bias, &mut output);
            // Loss = <output, d_output>, so dL/d* flows through d_output.
            output.iter().zip(d_output.iter()).map(|(o, d)| o * d).sum()
        };

        let mut d_weights = vec![0.0; weights.len()];
        let mut d_bias = vec![0.0; bias.len()];
        let mut d_input = vec![0.0; input.len()];
        conv2d_backward(
            &g,
            batch,
            out_channels,
            &input,
            &weights,
            &d_output,
            &mut d_weights,
            &mut d_bias,
            &mut d_input,
        );

        let eps = 1e-2;
        // Spot-check a handful of weight gradients.
        for &wi in &[0usize, 7, 19, weights.len() - 1] {
            let mut wp = weights.clone();
            wp[wi] += eps;
            let mut wm = weights.clone();
            wm[wi] -= eps;
            let numeric = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            assert!(
                (d_weights[wi] - numeric).abs() < 1e-2,
                "dW[{wi}]: analytic {} vs numeric {numeric}",
                d_weights[wi]
            );
        }
        // Bias gradients.
        for bi in 0..bias.len() {
            let mut bp = bias.clone();
            bp[bi] += eps;
            let mut bm = bias.clone();
            bm[bi] -= eps;
            let numeric = (loss(&input, &weights, &bp) - loss(&input, &weights, &bm)) / (2.0 * eps);
            assert!((d_bias[bi] - numeric).abs() < 1e-2);
        }
        // Input gradients.
        for &ii in &[0usize, 5, 17, input.len() - 1] {
            let orig = input[ii];
            input[ii] = orig + eps;
            let lp = loss(&input, &weights, &bias);
            input[ii] = orig - eps;
            let lm = loss(&input, &weights, &bias);
            input[ii] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((d_input[ii] - numeric).abs() < 1e-2);
        }
    }

    /// col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn col2im_is_adjoint_of_im2col() {
        let g = Conv2dGeometry::square(2, 5, 3, 2, 1);
        let cols = g.col_rows() * g.col_cols().unwrap();
        let x: Vec<f32> = (0..g.in_len()).map(|i| (i as f32 * 0.37).sin()).collect();
        let c: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.11).cos()).collect();

        let mut col = vec![0.0; cols];
        im2col(&g, &x, &mut col);
        let lhs: f32 = col.iter().zip(c.iter()).map(|(a, b)| a * b).sum();

        let mut img = vec![0.0; g.in_len()];
        col2im(&g, &c, &mut img);
        let rhs: f32 = x.iter().zip(img.iter()).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
