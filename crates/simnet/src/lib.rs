//! Deterministic virtual-time cluster fabric simulator.
//!
//! This crate stands in for the paper's physical testbed: 6 GPU servers with
//! 56 Gbps FDR InfiniBand HCAs, a Mellanox switch, per-node PCIe buses and a
//! dedicated memory server. It provides:
//!
//! * [`Simulation`] / [`SimContext`] — a cooperative scheduler that runs one
//!   simulated process at a time, always the one with the globally minimal
//!   wake-up time. Processes are ordinary closures on OS threads written in
//!   straight-line style (`ctx.sleep(..)`, `link.transfer(..)`), yet the
//!   execution is fully deterministic for a given program.
//! * [`resource::BandwidthResource`] — a FIFO store-and-forward link model
//!   with bandwidth, latency and utilisation accounting. Contention between
//!   concurrent transfers emerges from queueing, which is what produces the
//!   paper's bandwidth-saturation and communication-ratio curves.
//! * [`topology::Fabric`] — the cluster: per-node HCAs (tx/rx), an InfiniBand
//!   switch, per-node PCIe buses, and the SMB memory server.
//! * [`channel::SimChannel`] — virtual-time message passing between simulated
//!   processes (used by the MPI substrate and SMB control plane).
//! * [`explore`] — `schedcheck`, a loom-style schedule explorer: dispatch
//!   ties, wake order and message delivery order become replayable choice
//!   points, searched depth-first with DPOR-style independence pruning and
//!   replayed bit-identically from `.sched` traces.
//! * [`jitter::JitterModel`] — lognormal compute-time variation, modelling
//!   the paper's observation (§III-E) that workers deviate because they share
//!   the system bus, filesystem I/O and network bandwidth.
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_simnet::{Simulation, SimDuration};
//! use shmcaffe_simnet::resource::{BandwidthResource, LinkModel};
//!
//! let mut sim = Simulation::new();
//! let link = BandwidthResource::new("ib", LinkModel::new(7e9, SimDuration::from_micros(2)));
//! let l2 = link.clone();
//! sim.spawn("sender", move |ctx| {
//!     // 7 GB at 7 GB/s takes one simulated second (plus 2 us latency).
//!     l2.transfer(&ctx, 7_000_000_000);
//!     assert!(ctx.now().as_secs_f64() > 1.0);
//! });
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod explore;
pub mod fault;
pub mod jitter;
#[cfg(feature = "race-detect")]
pub mod race;
pub mod resource;
mod sched;
pub mod stats;
mod time;
pub mod topology;
pub mod trace;

pub use explore::{ExploreBounds, ExploreReport, FootprintKind};
pub use sched::{SimContext, Simulation};
pub use time::{SimDuration, SimTime};
pub use trace::ScheduleTrace;
