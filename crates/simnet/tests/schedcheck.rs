//! End-to-end tests of the `schedcheck` schedule explorer: choice-point
//! coverage (ties, wake order, delivery order), counterexample discovery
//! and minimization, bit-identical `.sched` replay, and DPOR pruning.

use parking_lot::Mutex;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::{ExploreBounds, FootprintKind, ScheduleTrace, SimDuration, Simulation};
use std::path::PathBuf;
use std::sync::Arc;

fn sched_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("target tmpdir exists");
    dir
}

/// Two processes tied at the same wake time, with an ordering assumption
/// that only the default (pid-order) schedule satisfies. `schedcheck` must
/// find the reordering, minimize it to a single tie flip, and the `.sched`
/// trace must replay the failure bit-identically. The shared flag is
/// annotated with footprints so the pruner knows the steps conflict.
#[test]
fn finds_and_replays_a_tie_ordering_bug() {
    let trace_path = sched_dir().join("tie_bug.sched");
    let setup = |sim: &mut Simulation| {
        let flag = Arc::new(Mutex::new(false));
        let w = Arc::clone(&flag);
        sim.spawn("writer", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            ctx.footprint(1, 0, 1, FootprintKind::Write);
            *w.lock() = true;
        });
        let r = Arc::clone(&flag);
        sim.spawn("reader", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            ctx.footprint(1, 0, 1, FootprintKind::Read);
            // Missing synchronization: relies on the writer winning the tie.
            assert!(*r.lock(), "schedcheck: reader ran before writer");
        });
    };

    let bounds =
        ExploreBounds { trace_path: Some(trace_path.clone()), ..ExploreBounds::exhaustive(64) };
    let report = Simulation::explore(&bounds, setup);
    let failure = report.failure.expect("the tie reordering must be found");
    assert!(failure.message.contains("reader ran before writer"), "got: {}", failure.message);
    // Minimized to a single decisive preemption (non-default choice).
    let preemptions =
        failure.trace.entries.iter().filter(|e| e.chosen != 0 && e.chosen != e.arity - 1).count();
    assert!(
        !failure.trace.entries.is_empty() && preemptions <= 1,
        "trace not minimal: {:?}",
        failure.trace
    );

    // The .sched file replays the failure bit-identically.
    assert_eq!(failure.trace_file.as_deref(), Some(trace_path.as_path()));
    let loaded = ScheduleTrace::load(&trace_path).expect("trace file parses");
    assert_eq!(loaded, failure.trace);
    let replay = Simulation::replay(&loaded, setup);
    assert_eq!(replay.result.as_ref().err(), Some(&failure.message));
    assert_eq!(replay.state_hash, failure.state_hash);
    // And again: replay of a replay is still bit-identical.
    let replay2 = Simulation::replay(&loaded, setup);
    assert_eq!(replay2.result.as_ref().err(), Some(&failure.message));
    assert_eq!(replay2.state_hash, replay.state_hash);
}

/// A correct version of the same model (the reader blocks on a doorbell
/// channel) certifies clean over the whole schedule space.
#[test]
fn certifies_a_synchronized_model_clean() {
    let report = Simulation::explore(&ExploreBounds::exhaustive(256), |sim| {
        let flag = Arc::new(Mutex::new(false));
        let doorbell: SimChannel<()> = SimChannel::new("doorbell");
        let w = Arc::clone(&flag);
        let tx = doorbell.clone();
        sim.spawn("writer", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            ctx.footprint(1, 0, 1, FootprintKind::Write);
            *w.lock() = true;
            tx.send(&ctx, ());
        });
        let r = Arc::clone(&flag);
        sim.spawn("reader", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            doorbell.recv(&ctx);
            ctx.footprint(1, 0, 1, FootprintKind::Read);
            assert!(*r.lock(), "doorbell implies the write is visible");
        });
    });
    assert!(report.certified(), "report: {report:?}");
    assert!(report.schedules >= 2, "the tie must still be explored: {report:?}");
}

/// Message delivery order within a delivery window is a choice point: two
/// senders post before the receiver looks, so either message may land first.
#[test]
fn explores_delivery_order_within_a_window() {
    let setup = |sim: &mut Simulation| {
        let ch: SimChannel<u32> = SimChannel::new("window");
        for (name, v) in [("s1", 1u32), ("s2", 2u32)] {
            let tx = ch.clone();
            sim.spawn(name, move |ctx| {
                ctx.sleep(SimDuration::from_millis(1));
                tx.send(&ctx, v);
            });
        }
        sim.spawn("rx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            let first = ch.recv(&ctx);
            // Wrong assumption: s1's message always arrives first.
            assert_eq!(first, 1, "schedcheck: delivery order is not guaranteed");
        });
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(64), setup);
    let failure = report.failure.expect("alternative delivery order must be found");
    assert!(failure.message.contains("delivery order"), "got: {}", failure.message);
    let replay = Simulation::replay(&failure.trace, setup);
    assert_eq!(replay.result.as_ref().err(), Some(&failure.message));
}

/// Wake order at a channel with several parked receivers is a choice point.
#[test]
fn explores_wake_order_races() {
    let setup = |sim: &mut Simulation| {
        let ch: SimChannel<u32> = SimChannel::new("wake");
        let got = Arc::new(Mutex::new(Vec::new()));
        for i in 0..2u32 {
            let rx = ch.clone();
            let got = Arc::clone(&got);
            sim.spawn(&format!("rx{i}"), move |ctx| {
                ctx.sleep(SimDuration::from_micros(u64::from(i)));
                let v = rx.recv(&ctx);
                got.lock().push((i, v));
            });
        }
        let tx = ch.clone();
        sim.spawn("tx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(1));
            tx.send(&ctx, 7);
            tx.send(&ctx, 8);
        });
        let got = Arc::clone(&got);
        sim.spawn("check", move |ctx| {
            ctx.sleep(SimDuration::from_millis(10));
            let g = got.lock();
            // Wrong assumption: the most recently parked receiver (rx1)
            // always takes the first message.
            assert_eq!(g.first(), Some(&(1, 7)), "schedcheck: wake order is not guaranteed");
        });
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(128), setup);
    let failure = report.failure.expect("alternative wake order must be found");
    assert!(failure.message.contains("wake order"), "got: {}", failure.message);
}

/// DPOR pruning: three workers touching *disjoint* footprint ranges all
/// commute, so the explorer skips their reorderings; the same model with
/// pruning disabled enumerates every interleaving. Both certify clean, and
/// the pruned search is strictly smaller — the explored-vs-naive counts the
/// acceptance criteria ask for.
#[test]
fn pruning_skips_commuting_reorderings() {
    let model = |conflicting: bool| {
        move |sim: &mut Simulation| {
            for i in 0..3usize {
                sim.spawn(&format!("w{i}"), move |ctx| {
                    // Region 42, disjoint 16-element tiles per worker — or
                    // fully overlapping writes in the conflicting variant.
                    let offset = if conflicting { 0 } else { i * 16 };
                    ctx.footprint(42, offset, 16, FootprintKind::Write);
                });
            }
        }
    };

    let pruned = Simulation::explore(&ExploreBounds::exhaustive(256), model(false));
    assert!(pruned.certified(), "disjoint model must certify: {pruned:?}");
    assert!(pruned.pruned_independent > 0, "expected pruning: {pruned:?}");
    assert!(pruned.schedules < pruned.naive_schedules());

    let naive_bounds = ExploreBounds { prune_independent: false, ..ExploreBounds::exhaustive(256) };
    let naive = Simulation::explore(&naive_bounds, model(false));
    assert!(naive.certified(), "naive search must certify too: {naive:?}");
    assert!(
        pruned.schedules < naive.schedules,
        "pruning must reduce explored schedules: {} vs {}",
        pruned.schedules,
        naive.schedules
    );

    // Overlapping writes do not commute: nothing may be pruned.
    let conflict = Simulation::explore(&ExploreBounds::exhaustive(256), model(true));
    assert!(conflict.certified(), "report: {conflict:?}");
    assert_eq!(conflict.pruned_independent, 0, "report: {conflict:?}");
    println!(
        "schedcheck pruning: disjoint {} explored / {} naive; conflicting {} explored",
        pruned.schedules,
        pruned.naive_schedules(),
        conflict.schedules
    );
}

/// Terminal-state dedup: commuting schedules converge on the same FNV
/// fingerprint, so with `state_dedup` the explorer skips their siblings.
#[test]
fn state_dedup_collapses_converging_schedules() {
    let setup = |sim: &mut Simulation| {
        let total = Arc::new(Mutex::new(0u64));
        for i in 0..3u64 {
            let total = Arc::clone(&total);
            sim.spawn(&format!("adder{i}"), move |ctx| {
                ctx.sleep(SimDuration::from_millis(1));
                *total.lock() += i + 1;
            });
        }
        let total = Arc::clone(&total);
        sim.set_state_probe(move || *total.lock());
    };
    let bounds = ExploreBounds {
        state_dedup: true,
        prune_independent: false,
        ..ExploreBounds::exhaustive(256)
    };
    let report = Simulation::explore(&bounds, setup);
    assert!(report.failure.is_none(), "report: {report:?}");
    // Addition commutes: every interleaving ends in the same state.
    assert_eq!(report.distinct_states, 1, "report: {report:?}");
    assert!(report.pruned_state > 0, "report: {report:?}");
}

/// The schedule budget is a hard cap and is reported as an incomplete
/// search, never as a certification.
#[test]
fn budget_truncation_is_not_certification() {
    let report = Simulation::explore(&ExploreBounds::exhaustive(2), |sim| {
        for i in 0..4usize {
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.sleep(SimDuration::from_millis(1));
                ctx.footprint(7, 0, 1, FootprintKind::Write);
            });
        }
    });
    assert!(report.failure.is_none());
    assert!(!report.complete, "a truncated search must not certify: {report:?}");
    assert_eq!(report.schedules, 2);
}

/// A stale trace (model changed underneath it) reports divergence instead
/// of silently replaying something else.
#[test]
fn stale_trace_reports_divergence() {
    let trace = ScheduleTrace::from_text("schedcheck v1\ntie 5 4\n").expect("valid text");
    let outcome = Simulation::replay(&trace, |sim| {
        for i in 0..2usize {
            sim.spawn(&format!("p{i}"), move |ctx| ctx.sleep(SimDuration::from_millis(1)));
        }
    });
    let err = outcome.result.expect_err("arity mismatch must be reported");
    assert!(err.contains("diverged"), "got: {err}");
}

/// Deadlocks reachable only under alternative schedules are found and
/// reported like any other failure: the default schedule completes, but
/// delivering the other sender's message first leaves a waiter parked
/// forever.
#[test]
fn finds_schedule_dependent_deadlock() {
    let setup = |sim: &mut Simulation| {
        let data: SimChannel<u32> = SimChannel::new("data");
        let done: SimChannel<()> = SimChannel::new("done");
        for (name, v) in [("s1", 1u32), ("s2", 2u32)] {
            let tx = data.clone();
            sim.spawn(name, move |ctx| {
                ctx.sleep(SimDuration::from_millis(1));
                tx.send(&ctx, v);
            });
        }
        let d = done.clone();
        sim.spawn("rx", move |ctx| {
            ctx.sleep(SimDuration::from_millis(5));
            // Signals completion only for s1's message — the alternative
            // delivery order strands the waiter.
            if data.recv(&ctx) == 1 {
                d.send(&ctx, ());
            }
        });
        sim.spawn("waiter", move |ctx| {
            done.recv(&ctx);
        });
    };
    let report = Simulation::explore(&ExploreBounds::exhaustive(128), setup);
    let failure = report.failure.expect("the stranding delivery order must be found");
    assert!(failure.message.contains("deadlock"), "got: {}", failure.message);
    assert!(failure.message.contains("waiter"), "got: {}", failure.message);
    let replay = Simulation::replay(&failure.trace, setup);
    assert_eq!(replay.result.as_ref().err(), Some(&failure.message));
}
