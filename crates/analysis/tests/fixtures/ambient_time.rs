// Lint fixture: ambient wall-clock time in sim code. Virtual time must come
// from SimContext::now(), never the host clock.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
