use std::fmt;

/// Errors produced by tensor construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape dims.
    LengthMismatch {
        /// Length of the provided buffer.
        data_len: usize,
        /// Number of elements implied by the shape.
        shape_len: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// A reshape was requested to a shape with a different element count.
    ReshapeMismatch {
        /// Element count of the tensor.
        have: usize,
        /// Element count of the requested shape.
        want: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// The tensor's rank.
        rank: usize,
    },
    /// Convolution/pooling geometry does not produce a positive output size.
    BadGeometry(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { data_len, shape_len } => {
                write!(f, "data length {data_len} does not match shape element count {shape_len}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::ReshapeMismatch { have, want } => {
                write!(f, "cannot reshape {have} elements into {want} elements")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::BadGeometry(msg) => write!(f, "bad geometry: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let variants = [
            TensorError::LengthMismatch { data_len: 1, shape_len: 2 },
            TensorError::ShapeMismatch { left: vec![1], right: vec![2] },
            TensorError::ReshapeMismatch { have: 3, want: 4 },
            TensorError::AxisOutOfRange { axis: 5, rank: 2 },
            TensorError::BadGeometry("x".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
