// Lint fixture: an ad-hoc float reduction. Summation order (and therefore
// the rounded result) silently changes when the iterator chain is
// refactored; reductions must use the fixed-order helpers in
// shmcaffe-tensor.
pub fn mean(xs: &[f32]) -> f32 {
    xs.iter().sum::<f32>() / xs.len() as f32
}
