//! Minimal fixed-width table rendering for experiment output.

/// A terminal table with a title, column headers and string rows.
///
/// # Example
///
/// ```rust
/// use shmcaffe_bench::table::Table;
///
/// let mut t = Table::new("Demo", &["model", "time"]);
/// t.row(&["Inception_v1", "257 ms"]);
/// let s = t.render();
/// assert!(s.contains("Inception_v1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows (each padded to the header width).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats fractional hours as the paper's `h:mm` notation
/// (22.98 h → `"22:59"`).
pub fn hours_hm(hours: f64) -> String {
    let total_minutes = (hours * 60.0).round() as i64;
    format!("{}:{:02}", total_minutes / 60, total_minutes % 60)
}

/// Formats milliseconds with one decimal.
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("T", &["a", "long_header"]);
        t.row(&["xxxxxx", "1"]);
        t.row(&["y", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("a     "));
        assert!(lines[3].starts_with("xxxxxx"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(&["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn hours_formatting_matches_paper_notation() {
        assert_eq!(hours_hm(22.983), "22:59");
        assert_eq!(hours_hm(2.28), "2:17");
        assert_eq!(hours_hm(0.0), "0:00");
        assert_eq!(hours_hm(1.0), "1:00");
    }

    #[test]
    fn numeric_formatters() {
        assert_eq!(ms(257.04), "257.0");
        assert_eq!(pct(0.263), "26.3%");
    }
}
