//! Microbenchmarks of the tensor substrate: gemm, im2col convolution,
//! softmax and the BLAS-1 kernels every SEASGD exchange runs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shmcaffe_tensor::conv::{conv2d_forward, Conv2dGeometry};
use shmcaffe_tensor::gemm::{gemm, Transpose};
use shmcaffe_tensor::ops;
use shmcaffe_tensor::softmax::softmax;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128] {
        let a = vec![0.5f32; n * n];
        let b = vec![0.25f32; n * n];
        let mut out = vec![0.0f32; n * n];
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, &n| {
            bench.iter(|| {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    n,
                    n,
                    n,
                    1.0,
                    black_box(&a),
                    black_box(&b),
                    0.0,
                    &mut out,
                );
            });
        });
    }
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    // Inception-style 1x1 bottleneck: GEMM-shaped, packing-bound — the
    // fused path's worst case relative to materialised im2col.
    let geom = Conv2dGeometry::square(192, 28, 1, 1, 0);
    let out_channels = 64;
    let batch = 8;
    let input = vec![0.1f32; batch * geom.in_len()];
    let weights = vec![0.01f32; out_channels * geom.col_rows()];
    let bias = vec![0.0f32; out_channels];
    let mut output = vec![0.0f32; batch * out_channels * geom.col_cols().unwrap()];
    c.bench_function("conv2d_forward_inception_1x1_64", |b| {
        b.iter(|| {
            conv2d_forward(
                &geom,
                batch,
                out_channels,
                black_box(&input),
                &weights,
                &bias,
                &mut output,
            );
        });
    });
}

fn bench_softmax(c: &mut Criterion) {
    let rows = 64;
    let classes = 1000; // ImageNet-sized head
    let logits = vec![0.3f32; rows * classes];
    let mut probs = vec![0.0f32; rows * classes];
    c.bench_function("softmax_64x1000", |b| {
        b.iter(|| softmax(rows, classes, black_box(&logits), &mut probs));
    });
}

fn bench_axpy_mix(c: &mut Criterion) {
    // The elastic-mixing kernel at the decimated parameter size.
    let n = 4096;
    let x = vec![0.5f32; n];
    let mut y = vec![0.25f32; n];
    c.bench_function("axpy_4096", |b| {
        b.iter(|| ops::axpy(black_box(0.2), black_box(&x), &mut y));
    });
}

criterion_group!(benches, bench_gemm, bench_conv, bench_softmax, bench_axpy_mix);
criterion_main!(benches);
