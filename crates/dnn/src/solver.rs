//! The SGD solver with Caffe's hyper-parameters and learning-rate policies.

use serde::{Deserialize, Serialize};
use shmcaffe_tensor::Tensor;

use crate::{DnnError, Net, Phase};

/// Learning-rate schedule, mirroring Caffe's `lr_policy`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrPolicy {
    /// Constant learning rate.
    Fixed,
    /// `base_lr * gamma^(floor(iter / step_size))` — the paper's setting
    /// (γ = 0.1, step size = 4 epochs).
    Step {
        /// Multiplicative decay per step.
        gamma: f32,
        /// Iterations between decays.
        step_size: usize,
    },
    /// `base_lr * (1 + gamma * iter)^(-power)`.
    Inv {
        /// Decay rate.
        gamma: f32,
        /// Decay exponent.
        power: f32,
    },
    /// `base_lr * (1 - iter/max_iter)^power`.
    Poly {
        /// Decay exponent.
        power: f32,
        /// Total iterations of the schedule.
        max_iter: usize,
    },
}

impl LrPolicy {
    /// The learning rate at `iter` given `base_lr`.
    pub fn lr_at(&self, base_lr: f32, iter: usize) -> f32 {
        match *self {
            LrPolicy::Fixed => base_lr,
            LrPolicy::Step { gamma, step_size } => {
                base_lr * gamma.powi((iter / step_size.max(1)) as i32)
            }
            LrPolicy::Inv { gamma, power } => base_lr * (1.0 + gamma * iter as f32).powf(-power),
            LrPolicy::Poly { power, max_iter } => {
                let frac = 1.0 - (iter.min(max_iter) as f32 / max_iter.max(1) as f32);
                base_lr * frac.powf(power)
            }
        }
    }
}

/// Solver hyper-parameters (the paper: base_lr 0.1, γ 0.1, momentum 0.9,
/// step size 4 epochs, 15-epoch max).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Base learning rate η.
    pub base_lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule.
    pub policy: LrPolicy,
    /// Optional gradient clipping bound (absolute value per element).
    pub clip_gradients: Option<f32>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            base_lr: 0.1,
            momentum: 0.9,
            weight_decay: 0.0005,
            policy: LrPolicy::Fixed,
            clip_gradients: None,
        }
    }
}

/// The SGD-with-momentum solver wrapped around a [`Net`].
///
/// Splitting [`Solver::compute_gradients`] from [`Solver::apply_update`]
/// lets distributed platforms aggregate/replace gradients between the halves
/// (SSGD allreduce, parameter-server exchange) — exactly how the baselines
/// and ShmCaffe reuse Caffe's solver (paper §III-C: "ShmCaffe uses the SGD
/// optimizer of Caffe to update the local weight").
pub struct Solver {
    net: Net,
    config: SolverConfig,
    momentum_buf: Vec<Tensor>,
    iter: usize,
}

impl Solver {
    /// Wraps a network with solver state.
    pub fn new(net: Net, config: SolverConfig) -> Self {
        Solver { net, config, momentum_buf: Vec::new(), iter: 0 }
    }

    /// The wrapped network.
    pub fn net(&self) -> &Net {
        &self.net
    }

    /// Mutable access to the wrapped network.
    pub fn net_mut(&mut self) -> &mut Net {
        &mut self.net
    }

    /// The solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Completed update count.
    pub fn iter(&self) -> usize {
        self.iter
    }

    /// Current learning rate.
    pub fn current_lr(&self) -> f32 {
        self.config.policy.lr_at(self.config.base_lr, self.iter)
    }

    /// Zeroes gradients, runs forward + backward on one minibatch, and
    /// returns the loss. Does *not* update weights.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn compute_gradients(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32, DnnError> {
        self.net.zero_grads();
        let (loss, _) = self.net.forward_loss(input, labels, Phase::Train)?;
        self.net.backward_from_loss(labels)?;
        Ok(loss)
    }

    /// Applies the currently stored gradients with momentum, weight decay
    /// and the scheduled learning rate (Caffe's update rule:
    /// `v = momentum * v + lr * (grad + decay * w); w -= v`), then advances
    /// the iteration counter.
    pub fn apply_update(&mut self) {
        let lr = self.current_lr();
        let momentum = self.config.momentum;
        let decay = self.config.weight_decay;
        let clip = self.config.clip_gradients;

        // Lazily size the momentum buffers on first use.
        if self.momentum_buf.is_empty() {
            let mut shapes = Vec::new();
            self.net.for_each_param(|p, _| shapes.push(p.dims().to_vec()));
            self.momentum_buf = shapes.iter().map(|s| Tensor::zeros(s)).collect();
        }

        let mut idx = 0;
        let bufs = &mut self.momentum_buf;
        self.net.for_each_param(|p, g| {
            let v = &mut bufs[idx];
            idx += 1;
            for ((vv, pv), gv) in
                v.data_mut().iter_mut().zip(p.data_mut().iter_mut()).zip(g.data().iter())
            {
                let mut grad = gv + decay * *pv;
                if let Some(bound) = clip {
                    grad = grad.clamp(-bound, bound);
                }
                *vv = momentum * *vv + lr * grad;
                *pv -= *vv;
            }
        });
        self.iter += 1;
    }

    /// One complete SGD step: gradients then update. Returns the loss.
    ///
    /// # Errors
    ///
    /// Propagates layer errors.
    pub fn step(&mut self, input: &Tensor, labels: &[usize]) -> Result<f32, DnnError> {
        let loss = self.compute_gradients(input, labels)?;
        self.apply_update();
        Ok(loss)
    }

    /// Consumes the solver, returning the trained network.
    pub fn into_net(self) -> Net {
        self.net
    }

    /// Captures the full training state (Caffe's `snapshot`): weights,
    /// momentum history and the iteration counter.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed solver; the `Result` covers internal
    /// length bookkeeping.
    pub fn snapshot(&mut self) -> Result<Snapshot, DnnError> {
        let n = self.net.param_len();
        let mut weights = vec![0.0f32; n];
        self.net.copy_weights_to(&mut weights)?;
        let momentum: Vec<f32> =
            self.momentum_buf.iter().flat_map(|t| t.data().iter().copied()).collect();
        Ok(Snapshot { iter: self.iter, weights, momentum })
    }

    /// Restores a previously captured [`Snapshot`] (Caffe's
    /// `--snapshot` resume): training continues bit-identically from the
    /// captured point.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ParamLengthMismatch`] if the snapshot does not
    /// fit this network.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), DnnError> {
        let n = self.net.param_len();
        if snap.weights.len() != n {
            return Err(DnnError::ParamLengthMismatch { expected: n, got: snap.weights.len() });
        }
        if !snap.momentum.is_empty() && snap.momentum.len() != n {
            return Err(DnnError::ParamLengthMismatch { expected: n, got: snap.momentum.len() });
        }
        self.net.load_weights_from(&snap.weights)?;
        if snap.momentum.is_empty() {
            self.momentum_buf.clear();
        } else {
            // Rebuild momentum buffers with the layer shapes.
            if self.momentum_buf.is_empty() {
                let mut shapes = Vec::new();
                self.net.for_each_param(|p, _| shapes.push(p.dims().to_vec()));
                self.momentum_buf = shapes.iter().map(|s| Tensor::zeros(s)).collect();
            }
            let mut offset = 0;
            for buf in &mut self.momentum_buf {
                let len = buf.len();
                buf.data_mut().copy_from_slice(&snap.momentum[offset..offset + len]);
                offset += len;
            }
        }
        self.iter = snap.iter;
        Ok(())
    }
}

/// A serialisable training checkpoint (weights + momentum + iteration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Iteration count at capture time.
    pub iter: usize,
    /// Flattened network weights.
    pub weights: Vec<f32>,
    /// Flattened momentum buffers (empty if no update has run yet).
    pub momentum: Vec<f32>,
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("net", &self.net)
            .field("iter", &self.iter)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{InnerProduct, Relu};
    use shmcaffe_tensor::init::Filler;

    fn make_solver(policy: LrPolicy) -> Solver {
        let mut net = Net::new("t");
        net.add(InnerProduct::new("fc1", 2, 8, Filler::Xavier, 1));
        net.add(Relu::new("r"));
        net.add(InnerProduct::new("fc2", 8, 2, Filler::Xavier, 1));
        Solver::new(
            net,
            SolverConfig {
                base_lr: 0.2,
                momentum: 0.9,
                weight_decay: 0.0,
                policy,
                clip_gradients: None,
            },
        )
    }

    #[test]
    fn lr_policies() {
        assert_eq!(LrPolicy::Fixed.lr_at(0.1, 100), 0.1);
        let step = LrPolicy::Step { gamma: 0.1, step_size: 10 };
        assert!((step.lr_at(1.0, 9) - 1.0).abs() < 1e-7);
        assert!((step.lr_at(1.0, 10) - 0.1).abs() < 1e-7);
        assert!((step.lr_at(1.0, 25) - 0.01).abs() < 1e-7);
        let inv = LrPolicy::Inv { gamma: 1.0, power: 1.0 };
        assert!((inv.lr_at(1.0, 1) - 0.5).abs() < 1e-7);
        let poly = LrPolicy::Poly { power: 1.0, max_iter: 10 };
        assert!((poly.lr_at(1.0, 5) - 0.5).abs() < 1e-7);
        assert_eq!(poly.lr_at(1.0, 20), 0.0);
    }

    #[test]
    fn solver_reduces_loss_on_separable_task() {
        let mut solver = make_solver(LrPolicy::Fixed);
        let x =
            Tensor::from_vec(vec![1.0, 1.0, -1.0, -1.0, 1.0, -1.0, -1.0, 1.0], &[4, 2]).unwrap();
        let labels = vec![0usize, 0, 1, 1];
        let first = solver.step(&x, &labels).unwrap();
        for _ in 0..100 {
            solver.step(&x, &labels).unwrap();
        }
        let last = solver.step(&x, &labels).unwrap();
        assert!(last < first * 0.2, "{first} -> {last}");
        assert_eq!(solver.iter(), 102);
    }

    #[test]
    fn momentum_accelerates_along_constant_gradient() {
        // With a constant gradient g and momentum m, successive updates grow
        // toward lr*g/(1-m). Verify the update magnitude grows.
        let mut solver = make_solver(LrPolicy::Fixed);
        let x = Tensor::from_vec(vec![1.0, 0.5], &[1, 2]).unwrap();
        let labels = vec![0usize];
        let n = solver.net_mut().param_len();
        let mut w0 = vec![0.0; n];
        solver.net_mut().copy_weights_to(&mut w0).unwrap();
        solver.step(&x, &labels).unwrap();
        let mut w1 = vec![0.0; n];
        solver.net_mut().copy_weights_to(&mut w1).unwrap();
        solver.step(&x, &labels).unwrap();
        let mut w2 = vec![0.0; n];
        solver.net_mut().copy_weights_to(&mut w2).unwrap();
        let d1: f32 = w0.iter().zip(w1.iter()).map(|(a, b)| (a - b).abs()).sum();
        let d2: f32 = w1.iter().zip(w2.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(d2 > d1 * 1.2, "momentum should accelerate: {d1} vs {d2}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradients() {
        let mut net = Net::new("d");
        net.add(InnerProduct::new("fc", 1, 1, Filler::Constant(1.0), 0));
        let mut solver = Solver::new(
            net,
            SolverConfig {
                base_lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.5,
                policy: LrPolicy::Fixed,
                clip_gradients: None,
            },
        );
        // Zero gradients: only decay acts.
        solver.net_mut().zero_grads();
        solver.apply_update();
        let mut w = vec![0.0; 2];
        solver.net_mut().copy_weights_to(&mut w).unwrap();
        // w = 1 - 0.1*0.5*1 = 0.95 (bias stays 0).
        assert!((w[0] - 0.95).abs() < 1e-6);
        assert_eq!(w[1], 0.0);
    }

    #[test]
    fn gradient_clipping_bounds_update() {
        let mut net = Net::new("c");
        net.add(InnerProduct::new("fc", 1, 1, Filler::Constant(0.0), 0));
        let mut solver = Solver::new(
            net,
            SolverConfig {
                base_lr: 1.0,
                momentum: 0.0,
                weight_decay: 0.0,
                policy: LrPolicy::Fixed,
                clip_gradients: Some(0.1),
            },
        );
        solver.net_mut().load_grads_from(&[100.0, -100.0]).unwrap();
        solver.apply_update();
        let mut w = vec![0.0; 2];
        solver.net_mut().copy_weights_to(&mut w).unwrap();
        assert!((w[0] + 0.1).abs() < 1e-6);
        assert!((w[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let mut solver = make_solver(LrPolicy::Step { gamma: 0.5, step_size: 7 });
        let x = Tensor::from_vec(vec![0.4, -0.6], &[1, 2]).unwrap();
        let labels = vec![1usize];
        for _ in 0..5 {
            solver.step(&x, &labels).unwrap();
        }
        let snap = solver.snapshot().unwrap();
        assert_eq!(snap.iter, 5);

        // Path A: continue directly.
        for _ in 0..5 {
            solver.step(&x, &labels).unwrap();
        }
        let n = solver.net_mut().param_len();
        let mut direct = vec![0.0f32; n];
        solver.net_mut().copy_weights_to(&mut direct).unwrap();

        // Path B: fresh solver restored from the snapshot, same steps.
        let mut resumed = make_solver(LrPolicy::Step { gamma: 0.5, step_size: 7 });
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.iter(), 5);
        for _ in 0..5 {
            resumed.step(&x, &labels).unwrap();
        }
        let mut restored = vec![0.0f32; n];
        resumed.net_mut().copy_weights_to(&mut restored).unwrap();
        assert_eq!(direct, restored, "resume must be bit-identical");
    }

    #[test]
    fn restore_rejects_wrong_size() {
        let mut solver = make_solver(LrPolicy::Fixed);
        let bad = Snapshot { iter: 0, weights: vec![0.0; 3], momentum: vec![] };
        assert!(solver.restore(&bad).is_err());
    }

    #[test]
    fn snapshot_before_any_update_has_empty_momentum() {
        let mut solver = make_solver(LrPolicy::Fixed);
        let snap = solver.snapshot().unwrap();
        assert!(snap.momentum.is_empty());
        assert_eq!(snap.iter, 0);
        // And restoring it works.
        let mut other = make_solver(LrPolicy::Fixed);
        other.restore(&snap).unwrap();
    }

    #[test]
    fn step_policy_decays_during_training() {
        let mut solver = make_solver(LrPolicy::Step { gamma: 0.1, step_size: 5 });
        assert!((solver.current_lr() - 0.2).abs() < 1e-7);
        let x = Tensor::zeros(&[1, 2]);
        for _ in 0..5 {
            solver.step(&x, &[0]).unwrap();
        }
        assert!((solver.current_lr() - 0.02).abs() < 1e-7);
    }
}
