//! Vector-clock happens-before race detection for the simulated data plane.
//!
//! Compiled in only under the `race-detect` feature. The simulator's
//! cooperative scheduler makes every run deterministic, but determinism is
//! not the same as *correct synchronization*: two simulated processes may
//! touch the same shared-memory segment with no ordering edge between them,
//! and the result then silently depends on scheduler tie-breaking rules
//! rather than on protocol-level synchronization. Following the
//! FastTrack/ThreadSanitizer lineage, this module tracks one vector clock
//! per simulated process and checks every instrumented byte-range access
//! against the region's access history.
//!
//! # Happens-before edges
//!
//! Clocks advance along the synchronization edges the platform actually
//! uses (see DESIGN.md § Enforced invariants):
//!
//! * **channel send → recv** ([`crate::channel::SimChannel`]) — covers the
//!   MPI substrate, SMB doorbell/update notifications, and all
//!   rendezvous-style fan-out helpers;
//! * **process spawn** ([`crate::SimContext::spawn`]) — parent to child;
//! * **segment creation → allocation** and **lease heartbeat → eviction**
//!   in the SMB control plane (instrumented by `shmcaffe-smb`).
//!
//! # Access classification
//!
//! Not every concurrent overlapping pair is a bug in this system: the SMB
//! accumulate engine is serialized by the memory server's DRAM bus (paper
//! T.A3, "the SMB server exclusively processes the cumulative update
//! requests"), and SEASGD readers of the global weight buffer are stale-
//! tolerant *by design* (asynchronous SGD). [`AccessKind`] therefore
//! distinguishes plain accesses from engine-serialized ("atomic") ones,
//! and a pair is racy only if it is conflicting **and** at least one side
//! is a plain access — see [`AccessKind::conflicts_with`].

use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::SimContext;

/// A vector clock: one logical-time component per simulated process id.
///
/// Missing components read as zero, so clocks from simulations that spawn
/// processes dynamically compare correctly at any length.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    pub(crate) fn from_components(components: Vec<u64>) -> Self {
        VectorClock(components)
    }

    /// The clock component for `pid` (zero if never ticked).
    pub fn component(&self, pid: usize) -> u64 {
        self.0.get(pid).copied().unwrap_or(0)
    }

    pub(crate) fn components(&self) -> &[u64] {
        &self.0
    }
}

/// How an instrumented access touches a byte range.
///
/// The `Atomic*` kinds model operations that the simulated platform
/// serializes on a shared engine (the SMB accumulate engine / DRAM bus) or
/// that are stale-tolerant by protocol design; they conflict only with
/// *plain* accesses, never with each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain read: must not observe a concurrent write of any kind.
    Read,
    /// Plain write: conflicts with every concurrent overlapping access.
    Write,
    /// Engine-serialized / stale-tolerant read (e.g. a SEASGD worker
    /// pulling the global weights while accumulates are in flight).
    AtomicRead,
    /// Engine-serialized write (e.g. a progress-board slot publish).
    AtomicWrite,
    /// Engine-serialized read-modify-write (the SMB accumulate).
    AtomicRmw,
}

impl AccessKind {
    fn is_write_class(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::AtomicWrite | AccessKind::AtomicRmw)
    }

    fn is_plain(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Write)
    }

    /// Whether two overlapping accesses from different processes with no
    /// happens-before edge constitute a race: at least one side writes,
    /// and at least one side is a plain (non-engine-serialized) access.
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        (self.is_write_class() || other.is_write_class()) && (self.is_plain() || other.is_plain())
    }

    /// The schedule explorer's view of this access — the independence
    /// relation exported to [`crate::explore`].
    ///
    /// Exploration needs a strictly finer relation than
    /// [`AccessKind::conflicts_with`]: an `Atomic*`/`Atomic*` pair is never
    /// a *race* (both sides are engine-serialized), but its order still
    /// determines state, so for schedule pruning only read-class pairs
    /// commute (see [`crate::explore::FootprintKind::commutes_with`]).
    pub fn footprint(self) -> crate::explore::FootprintKind {
        match self {
            AccessKind::Read => crate::explore::FootprintKind::Read,
            AccessKind::Write => crate::explore::FootprintKind::Write,
            AccessKind::AtomicRead => crate::explore::FootprintKind::AtomicRead,
            AccessKind::AtomicWrite => crate::explore::FootprintKind::AtomicWrite,
            AccessKind::AtomicRmw => crate::explore::FootprintKind::AtomicRmw,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::AtomicRead => "atomic-read",
            AccessKind::AtomicWrite => "atomic-write",
            AccessKind::AtomicRmw => "atomic-rmw",
        };
        f.write_str(s)
    }
}

/// One recorded access in a region's history.
#[derive(Debug, Clone)]
struct Access {
    pid: usize,
    kind: AccessKind,
    offset: usize,
    len: usize,
    site: &'static str,
    /// The accessor's own clock component at access time. An access `a`
    /// happens-before a later access with clock `c` iff
    /// `a.epoch <= c.component(a.pid)` (the FastTrack epoch test).
    epoch: u64,
}

/// A detected race: two concurrent overlapping accesses with no
/// happens-before edge, named by their instrumentation sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The region (RDMA rkey) the accesses overlap on.
    pub region: u64,
    /// Instrumentation site of the earlier-recorded access.
    pub earlier_site: &'static str,
    /// Process id of the earlier-recorded access.
    pub earlier_pid: usize,
    /// Kind of the earlier-recorded access.
    pub earlier_kind: AccessKind,
    /// Instrumentation site of the later-recorded access.
    pub later_site: &'static str,
    /// Process id of the later-recorded access.
    pub later_pid: usize,
    /// Kind of the later-recorded access.
    pub later_kind: AccessKind,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race on region rkey:{:#x}: {} `{}` (pid {}) is concurrent with {} `{}` (pid {})",
            self.region,
            self.earlier_kind,
            self.earlier_site,
            self.earlier_pid,
            self.later_kind,
            self.later_site,
            self.later_pid,
        )
    }
}

struct DetectorState {
    /// Per-region access history, keyed by rkey.
    regions: BTreeMap<u64, Vec<Access>>,
    reports: Vec<RaceReport>,
    /// Site pairs already reported per region (report deduplication).
    seen: BTreeSet<(u64, &'static str, &'static str)>,
    halt_on_race: bool,
}

/// The happens-before race detector for one RDMA fabric's regions.
///
/// Owned by the fabric (not global), so concurrently running simulations
/// in one test binary never observe each other. By default a detected race
/// panics the accessing simulated process — the simulation then fails with
/// a message naming both access sites, which turns every integration test
/// compiled with `race-detect` into a zero-race assertion. Tests that
/// *expect* a race disable halting and inspect [`RaceDetector::reports`].
pub struct RaceDetector {
    inner: Mutex<DetectorState>,
}

impl Default for RaceDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for RaceDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.inner.lock();
        f.debug_struct("RaceDetector")
            .field("regions", &st.regions.len())
            .field("reports", &st.reports.len())
            .finish()
    }
}

fn ranges_overlap(a_off: usize, a_len: usize, b_off: usize, b_len: usize) -> bool {
    a_off < b_off + b_len && b_off < a_off + a_len
}

thread_local! {
    /// Per-OS-thread access override. Each simulated process runs on its
    /// own dedicated OS thread, so this is per-process state: an SMB client
    /// operation sets it to reclassify the raw RDMA access it performs
    /// internally (avoiding double-recording at two layers).
    static ACCESS_OVERRIDE: Cell<Option<(AccessKind, &'static str)>> = const { Cell::new(None) };
}

/// Runs `f` with the calling process's instrumented RDMA accesses
/// reclassified as `kind` from `site`. Used by higher layers (the SMB
/// client) whose single logical operation is implemented by a lower,
/// already-instrumented layer.
pub fn with_access<R>(kind: AccessKind, site: &'static str, f: impl FnOnce() -> R) -> R {
    ACCESS_OVERRIDE.with(|c| c.set(Some((kind, site))));
    let out = f();
    ACCESS_OVERRIDE.with(|c| c.set(None));
    out
}

impl RaceDetector {
    /// Creates an empty detector that halts the simulation on a race.
    pub fn new() -> Self {
        RaceDetector {
            inner: Mutex::new(DetectorState {
                regions: BTreeMap::new(),
                reports: Vec::new(),
                seen: BTreeSet::new(),
                halt_on_race: true,
            }),
        }
    }

    /// Whether a detected race panics the accessing simulated process
    /// (default `true`). Tests that deliberately seed a race disable this
    /// and assert on [`RaceDetector::reports`] instead.
    pub fn set_halt_on_race(&self, halt: bool) {
        self.inner.lock().halt_on_race = halt;
    }

    /// Records one byte-range access and checks it against the region's
    /// history. `region` is the RDMA rkey; `offset`/`len` are in elements.
    ///
    /// # Panics
    ///
    /// Panics (failing the simulation with both sites named) if the access
    /// races with a recorded one and halting is enabled.
    pub fn record(
        &self,
        ctx: &SimContext,
        region: u64,
        offset: usize,
        len: usize,
        kind: AccessKind,
        site: &'static str,
    ) {
        let (kind, site) = ACCESS_OVERRIDE.with(|c| c.get()).unwrap_or((kind, site));
        let pid = ctx.pid();
        let clock = ctx.vc_stamp();
        let epoch = clock.component(pid);
        let mut halt_msg: Option<String> = None;
        {
            let mut st = self.inner.lock();
            let st = &mut *st;
            let history = st.regions.entry(region).or_default();
            for prev in history.iter() {
                if prev.pid == pid
                    || !ranges_overlap(prev.offset, prev.len, offset, len)
                    || !prev.kind.conflicts_with(kind)
                    // The epoch test: `prev` happens-before this access iff
                    // its component is contained in our joined clock.
                    || prev.epoch <= clock.component(prev.pid)
                {
                    continue;
                }
                if !st.seen.insert((region, prev.site, site)) {
                    continue;
                }
                let report = RaceReport {
                    region,
                    earlier_site: prev.site,
                    earlier_pid: prev.pid,
                    earlier_kind: prev.kind,
                    later_site: site,
                    later_pid: pid,
                    later_kind: kind,
                };
                if st.halt_on_race && halt_msg.is_none() {
                    halt_msg = Some(report.to_string());
                }
                st.reports.push(report);
            }
            // Prune: an older access by the same process with the same
            // kind/range/site is superseded — anything concurrent with it
            // is also concurrent with the newer access (epochs only grow
            // along one process's timeline), so dropping it loses no races.
            history.retain(|a| {
                !(a.pid == pid
                    && a.kind == kind
                    && a.offset == offset
                    && a.len == len
                    && a.site == site)
            });
            history.push(Access { pid, kind, offset, len, site, epoch });
        }
        if let Some(msg) = halt_msg {
            panic!("{msg}");
        }
    }

    /// Drops a region's history (called when its memory is deregistered;
    /// rkeys are never reused, so later accesses cannot alias it).
    pub fn forget_region(&self, region: u64) {
        self.inner.lock().regions.remove(&region);
    }

    /// All races reported so far.
    pub fn reports(&self) -> Vec<RaceReport> {
        self.inner.lock().reports.clone()
    }

    /// Removes and returns all races reported so far.
    pub fn take_reports(&self) -> Vec<RaceReport> {
        std::mem::take(&mut self.inner.lock().reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::SimChannel;
    use crate::Simulation;
    use std::sync::Arc;

    #[test]
    fn conflict_matrix() {
        use AccessKind::*;
        // Plain write conflicts with everything.
        for k in [Read, Write, AtomicRead, AtomicWrite, AtomicRmw] {
            assert!(Write.conflicts_with(k), "{k:?}");
            assert!(k.conflicts_with(Write), "{k:?}");
        }
        // Plain read conflicts with every write class.
        assert!(Read.conflicts_with(AtomicWrite));
        assert!(Read.conflicts_with(AtomicRmw));
        assert!(!Read.conflicts_with(Read));
        assert!(!Read.conflicts_with(AtomicRead));
        // Engine-serialized accesses never conflict with each other.
        assert!(!AtomicRmw.conflicts_with(AtomicRmw));
        assert!(!AtomicRmw.conflicts_with(AtomicRead));
        assert!(!AtomicWrite.conflicts_with(AtomicRead));
    }

    #[test]
    fn unsynchronized_concurrent_writes_race() {
        let det = Arc::new(RaceDetector::new());
        det.set_halt_on_race(false);
        let mut sim = Simulation::new();
        for i in 0..2 {
            let det = Arc::clone(&det);
            sim.spawn(&format!("w{i}"), move |ctx| {
                det.record(&ctx, 7, 0, 4, AccessKind::Write, "test::write");
            });
        }
        sim.run();
        let reports = det.reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].region, 7);
        assert_eq!(reports[0].earlier_site, "test::write");
        assert_eq!(reports[0].later_site, "test::write");
    }

    #[test]
    fn channel_edge_orders_accesses() {
        let det = Arc::new(RaceDetector::new());
        let ch: SimChannel<()> = SimChannel::new("sync");
        let mut sim = Simulation::new();
        {
            let det = Arc::clone(&det);
            let tx = ch.clone();
            sim.spawn("producer", move |ctx| {
                det.record(&ctx, 1, 0, 8, AccessKind::Write, "test::produce");
                tx.send(&ctx, ());
            });
        }
        {
            let det = Arc::clone(&det);
            sim.spawn("consumer", move |ctx| {
                ch.recv(&ctx);
                det.record(&ctx, 1, 0, 8, AccessKind::Write, "test::consume");
            });
        }
        sim.run();
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }

    #[test]
    fn spawn_edge_orders_parent_and_child() {
        let det = Arc::new(RaceDetector::new());
        let mut sim = Simulation::new();
        {
            let det = Arc::clone(&det);
            sim.spawn("parent", move |ctx| {
                det.record(&ctx, 2, 0, 4, AccessKind::Write, "test::parent");
                let d2 = Arc::clone(&det);
                ctx.spawn("child", move |cctx| {
                    d2.record(&cctx, 2, 0, 4, AccessKind::Write, "test::child");
                });
            });
        }
        sim.run();
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let det = Arc::new(RaceDetector::new());
        let mut sim = Simulation::new();
        for i in 0..2usize {
            let det = Arc::clone(&det);
            sim.spawn(&format!("w{i}"), move |ctx| {
                det.record(&ctx, 3, i * 4, 4, AccessKind::Write, "test::slot");
            });
        }
        sim.run();
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }

    #[test]
    fn engine_serialized_rmws_do_not_race() {
        let det = Arc::new(RaceDetector::new());
        let mut sim = Simulation::new();
        for i in 0..3 {
            let det = Arc::clone(&det);
            sim.spawn(&format!("w{i}"), move |ctx| {
                det.record(&ctx, 4, 0, 16, AccessKind::AtomicRmw, "test::accumulate");
            });
        }
        sim.run();
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }

    #[test]
    #[should_panic(expected = "data race")]
    fn halting_detector_fails_the_simulation() {
        let det = Arc::new(RaceDetector::new());
        let mut sim = Simulation::new();
        for i in 0..2 {
            let det = Arc::clone(&det);
            sim.spawn(&format!("w{i}"), move |ctx| {
                det.record(&ctx, 5, 0, 4, AccessKind::Write, "test::write");
            });
        }
        sim.run();
    }

    #[test]
    fn override_reclassifies_inner_access() {
        let det = Arc::new(RaceDetector::new());
        det.set_halt_on_race(false);
        let mut sim = Simulation::new();
        {
            let det = Arc::clone(&det);
            sim.spawn("reader", move |ctx| {
                with_access(AccessKind::AtomicRead, "test::outer_read", || {
                    det.record(&ctx, 6, 0, 4, AccessKind::Read, "test::inner");
                });
            });
        }
        {
            let det = Arc::clone(&det);
            sim.spawn("rmw", move |ctx| {
                det.record(&ctx, 6, 0, 4, AccessKind::AtomicRmw, "test::accumulate");
            });
        }
        sim.run();
        // AtomicRead vs AtomicRmw: no race. Without the override the plain
        // Read would have conflicted.
        assert!(det.reports().is_empty(), "{:?}", det.reports());
    }
}
