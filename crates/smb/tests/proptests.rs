//! Property tests of the Soft Memory Box: accumulate order-independence,
//! read-after-write, sharded/unsharded equivalence, and retry-policy
//! determinism/deadline bounds.

use parking_lot::Mutex;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{SimDuration, Simulation};
use shmcaffe_smb::{RetryPolicy, ShardedClient, ShmKey, SmbClient, SmbCluster, SmbServer};
use std::sync::Arc;

fn server(nodes: usize) -> SmbServer {
    SmbServer::new(RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(nodes)))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The final global buffer equals initial + Σ increments regardless of
    /// how the accumulating workers interleave (staggered by arbitrary
    /// delays).
    #[test]
    fn accumulate_is_order_independent(
        increments in pvec(pvec(-10.0f32..10.0, 8), 1..6),
        delays in pvec(0u64..20, 6),
    ) {
        let n_workers = increments.len();
        let srv = server(n_workers.div_ceil(4).max(1));
        let expected: Vec<f32> = (0..8)
            .map(|i| increments.iter().map(|w| w[i]).sum())
            .collect();
        let key_ch: SimChannel<ShmKey> = SimChannel::new("k");
        let done: SimChannel<()> = SimChannel::new("d");
        let result: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));

        let mut sim = Simulation::new();
        for (rank, inc) in increments.clone().into_iter().enumerate() {
            let srv = srv.clone();
            let key_ch = key_ch.clone();
            let done = done.clone();
            let result = Arc::clone(&result);
            let delay = delays[rank % delays.len()];
            sim.spawn(&format!("w{rank}"), move |ctx| {
                let client = SmbClient::new(srv, NodeId(rank / 4));
                let key = if rank == 0 {
                    let key = client.create(&ctx, "wg", 8, None).unwrap();
                    for _ in 1..n_workers {
                        key_ch.send(&ctx, key);
                    }
                    key
                } else {
                    key_ch.recv(&ctx)
                };
                let wg = client.alloc(&ctx, key).unwrap();
                ctx.sleep(SimDuration::from_millis(delay));
                let dw_key = client.create(&ctx, &format!("dw{rank}"), 8, None).unwrap();
                let dw = client.alloc(&ctx, dw_key).unwrap();
                client.write(&ctx, &dw, &inc).unwrap();
                client.accumulate(&ctx, &dw, &wg).unwrap();
                if rank == 0 {
                    for _ in 1..n_workers {
                        done.recv(&ctx);
                    }
                    let mut out = vec![0.0f32; 8];
                    client.read(&ctx, &wg, &mut out).unwrap();
                    *result.lock() = out;
                } else {
                    done.send(&ctx, ());
                }
            });
        }
        sim.run();
        let got = result.lock().clone();
        for (a, b) in got.iter().zip(expected.iter()) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    /// Read-after-write returns exactly what was written, for any payload.
    #[test]
    fn read_after_write(data in pvec(-1e6f32..1e6, 1..64)) {
        let srv = server(1);
        let n = data.len();
        let result: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&result);
        let mut sim = Simulation::new();
        let payload = data.clone();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::new(srv, NodeId(0));
            let key = client.create(&ctx, "b", n, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            client.write(&ctx, &buf, &payload).unwrap();
            let mut out = vec![0.0f32; n];
            client.read(&ctx, &buf, &mut out).unwrap();
            *r2.lock() = out;
        });
        sim.run();
        prop_assert_eq!(result.lock().clone(), data);
    }

    /// A sharded buffer over K servers behaves exactly like a single
    /// buffer: write/accumulate/read roundtrips agree element-wise.
    #[test]
    fn sharded_equals_unsharded(
        servers in 1usize..5,
        base in pvec(-100.0f32..100.0, 4..40),
        inc in pvec(-10.0f32..10.0, 4..40),
    ) {
        let n = base.len().min(inc.len());
        let base = base[..n].to_vec();
        let inc = inc[..n].to_vec();
        let spec = ClusterSpec { memory_servers: servers, ..ClusterSpec::paper_testbed(1) };
        let cluster = SmbCluster::new(RdmaFabric::new(Fabric::new(spec))).unwrap();
        let result: Arc<Mutex<Vec<f32>>> = Arc::new(Mutex::new(Vec::new()));
        let r2 = Arc::clone(&result);
        let (b2, i2) = (base.clone(), inc.clone());
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = ShardedClient::new(&cluster, NodeId(0));
            let wg = client.alloc(&ctx, &client.create(&ctx, "wg", n, None).unwrap()).unwrap();
            let dw = client.alloc(&ctx, &client.create(&ctx, "dw", n, None).unwrap()).unwrap();
            client.write(&ctx, &wg, &b2).unwrap();
            client.write(&ctx, &dw, &i2).unwrap();
            client.accumulate(&ctx, &dw, &wg).unwrap();
            let mut out = vec![0.0f32; n];
            client.read(&ctx, &wg, &mut out).unwrap();
            *r2.lock() = out;
        });
        sim.run();
        let got = result.lock().clone();
        for i in 0..n {
            let expected = base[i] + inc[i];
            prop_assert!((got[i] - expected).abs() < 1e-4, "{} vs {}", got[i], expected);
        }
    }

    /// The cumulative backoff of any retry schedule never exceeds the
    /// policy's deadline, no single backoff exceeds the per-attempt cap,
    /// and the schedule never plans more retries than `max_attempts - 1`.
    #[test]
    fn retry_schedule_is_bounded_by_deadline(
        seed in 0u64..1_000_000_000,
        max_attempts in 1u32..20,
        base_us in 1u64..5_000,
        factor in 1.0f64..4.0,
        deadline_us in 1u64..200_000,
        jitter in 0.0f64..1.0,
    ) {
        let policy = RetryPolicy {
            max_attempts,
            base: SimDuration::from_micros(base_us),
            factor,
            max_backoff: SimDuration::from_millis(20),
            deadline: SimDuration::from_micros(deadline_us),
            jitter,
            seed,
        };
        let schedule = policy.schedule();
        prop_assert!(schedule.len() < max_attempts.max(1) as usize);
        let total: SimDuration = schedule.iter().copied().sum();
        prop_assert!(total <= policy.deadline, "{} > {}", total, policy.deadline);
        for b in &schedule {
            prop_assert!(*b <= policy.max_backoff);
        }
    }

    /// Jitter only ever shrinks a backoff, and by a bounded amount: every
    /// jittered backoff lands in `[nominal * (1 - jitter), nominal]` of the
    /// zero-jitter exponential, so de-synchronising the fleet can never
    /// push a retry *later* than the nominal schedule, and never earlier
    /// than the advertised lower bound.
    #[test]
    fn retry_jitter_is_bounded_below(
        seed in 0u64..1_000_000_000,
        attempt in 1u32..24,
        base_us in 1u64..5_000,
        factor in 1.0f64..4.0,
        jitter in 0.0f64..1.0,
    ) {
        let policy = RetryPolicy {
            base: SimDuration::from_micros(base_us),
            factor,
            jitter,
            seed,
            ..RetryPolicy::default()
        };
        let nominal = RetryPolicy { jitter: 0.0, ..policy }.backoff(attempt);
        let b = policy.backoff(attempt);
        prop_assert!(b <= nominal, "{} inflated past nominal {}", b, nominal);
        let floor = nominal.mul_f64(1.0 - jitter);
        prop_assert!(b >= floor, "{} under floor {} (jitter {})", b, floor, jitter);
    }

    /// Identical seeds yield bit-identical retry schedules; the jitter is
    /// a pure function of (seed, attempt).
    #[test]
    fn retry_schedule_is_deterministic_in_the_seed(
        seed in 0u64..1_000_000_000,
        max_attempts in 2u32..20,
    ) {
        let make = || RetryPolicy { max_attempts, ..RetryPolicy::with_seed(seed) };
        prop_assert_eq!(make().schedule(), make().schedule());
        for attempt in 1..max_attempts {
            prop_assert_eq!(make().backoff(attempt), make().backoff(attempt));
        }
    }
}
