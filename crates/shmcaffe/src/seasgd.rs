//! The SEASGD worker protocol (paper §III-C, §III-G, Fig. 6).
//!
//! Per exchange iteration the main thread:
//!
//! 1. waits for any pending global update to finish (mutual exclusion with
//!    the update thread — T.A5),
//! 2. **T1** reads the global weights `W_g` from the SMB buffer (not
//!    hidden: hiding it worsens the stale-parameter problem, §III-G),
//! 3. **T2** computes the weight increment `ΔW_x = α (W_x − W_g)` (eq. 5)
//!    and updates the local weights `W''_x = W'_x − ΔW_x` (eq. 6),
//! 4. **T3** wakes the update thread, which **T.A1** RDMA-writes `ΔW_x`
//!    into the worker's private SMB buffer, **T.A2** sends the accumulate
//!    request, and the server **T.A3** folds it into the global buffer
//!    `W'_g = W'_g + ΔW_x` (eq. 7),
//! 5. **T4** trains one minibatch and **T5** applies the local SGD update
//!    (eq. 2), overlapping with the update thread's work.
//!
//! [`ElasticExchanger`] packages steps 1–4 so that both the pure
//! asynchronous worker ([`run_worker`]) and the Hybrid-SGD group root
//! ([`crate::hybrid`]) share one implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shmcaffe_simnet::channel::SimChannel;
use shmcaffe_simnet::{SimContext, SimDuration, SimTime};
use shmcaffe_smb::progress::ProgressBoard;
use shmcaffe_smb::{RetryPolicy, SmbBuffer, SmbClient};

use crate::config::ShmCaffeConfig;
use crate::report::{EvalPoint, WorkerReport};
use crate::trainer::Trainer;
use crate::PlatformError;

/// The SMB buffers of one SEASGD participant (Fig. 5 layout): the shared
/// global buffer plus this worker's private increment buffer.
#[derive(Debug, Clone, Copy)]
pub struct SeasgdBuffers {
    /// The global weight buffer `W_g`, shared by every worker.
    pub wg: SmbBuffer,
    /// This worker's private `ΔW_x` buffer (not shared with other workers).
    pub dw: SmbBuffer,
}

enum UpdateRequest {
    /// Push this increment and accumulate it into the global buffer.
    Push(Vec<f32>),
    /// Terminate the update thread.
    Shutdown,
}

/// The update-thread reply: in `hide_global_read` mode it carries the
/// freshly read (but one-exchange stale) global weights.
type UpdateDone = Option<Vec<f32>>;

/// How long the main thread waits for the update thread before declaring
/// it dead. Generous: the update thread's own retry deadlines are in the
/// hundreds of milliseconds, so only a genuinely wedged thread trips this.
const EXCHANGE_TIMEOUT: SimDuration = SimDuration::from_secs(60);

/// Degraded-mode accounting of one exchanger's update thread: what
/// happened to increments pushed while a network partition cut the worker
/// off from the memory server (paper-style minority-side behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradedStats {
    /// Increments buffered for replay after the partition heals.
    pub partition_buffered: u64,
    /// Increments dropped because the staleness-capped buffer was full
    /// (or still held entries at shutdown).
    pub partition_dropped: u64,
    /// Buffered increments successfully replayed into `W_g`.
    pub reconciled_updates: u64,
}

#[derive(Debug, Default)]
struct DegradedCounters {
    buffered: AtomicU64,
    dropped: AtomicU64,
    reconciled: AtomicU64,
    /// Entries currently sitting in the update thread's backlog. A
    /// snapshot folds them into `partition_dropped`: they are only ever
    /// replayed by a *later* successful push, so at any observation point
    /// they have not reached the global buffer.
    pending: AtomicU64,
}

impl DegradedCounters {
    fn snapshot(&self) -> DegradedStats {
        DegradedStats {
            partition_buffered: self.buffered.load(Ordering::Relaxed),
            partition_dropped: self.dropped.load(Ordering::Relaxed)
                + self.pending.load(Ordering::Relaxed),
            reconciled_updates: self.reconciled.load(Ordering::Relaxed),
        }
    }
}

/// The worker-side half of the SEASGD exchange: owns the update thread and
/// the elastic-mixing buffers.
pub struct ElasticExchanger {
    client: SmbClient,
    buffers: SeasgdBuffers,
    req_ch: SimChannel<UpdateRequest>,
    done_ch: SimChannel<UpdateDone>,
    pending: bool,
    prefetched_wg: Option<Vec<f32>>,
    moving_rate: f32,
    hide_global_read: bool,
    local_mix_bps: f64,
    wire_bytes: u64,
    retry: RetryPolicy,
    dropped: Arc<AtomicU64>,
    degraded: Arc<DegradedCounters>,
    wg: Vec<f32>,
    dw: Vec<f32>,
    wx: Vec<f32>,
}

impl std::fmt::Debug for ElasticExchanger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticExchanger")
            .field("pending", &self.pending)
            .field("wire_bytes", &self.wire_bytes)
            .finish()
    }
}

impl ElasticExchanger {
    /// Spawns the update thread and prepares the mixing buffers.
    pub fn spawn(
        ctx: &SimContext,
        client: SmbClient,
        buffers: SeasgdBuffers,
        param_len: usize,
        wire_bytes: u64,
        cfg: &ShmCaffeConfig,
        label: &str,
    ) -> Self {
        let req_ch: SimChannel<UpdateRequest> = SimChannel::new(&format!("seasgd_req_{label}"));
        let done_ch: SimChannel<UpdateDone> = SimChannel::new(&format!("seasgd_done_{label}"));
        // Per-worker retry policy, seeded so identical runs retry
        // identically; deadlines are sized to outlast short fault windows.
        let retry_seed =
            label.bytes().fold(cfg.seed, |acc, b| acc.wrapping_mul(31).wrapping_add(u64::from(b)));
        let retry = RetryPolicy {
            max_attempts: 8,
            deadline: SimDuration::from_millis(500),
            ..RetryPolicy::with_seed(retry_seed)
        };
        let dropped = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(DegradedCounters::default());
        {
            let client = client.clone();
            let req_ch = req_ch.clone();
            let done_ch = done_ch.clone();
            let hide_read = cfg.hide_global_read;
            let staleness_cap = cfg.partition_staleness_cap;
            let retry = retry.clone();
            let dropped = Arc::clone(&dropped);
            let degraded = Arc::clone(&degraded);
            ctx.spawn(&format!("update_thread_{label}"), move |uctx| {
                let mut wg_readback = vec![0.0f32; param_len];
                // Increments held back while a partition cuts this worker
                // off from the memory server, replayed once it heals.
                let mut backlog: Vec<Vec<f32>> = Vec::new();
                let push = |uctx: &SimContext, dw: &[f32]| {
                    client.write_retrying(uctx, &buffers.dw, dw, &retry).and_then(|()| {
                        client
                            .accumulate_retrying(uctx, &buffers.dw, &buffers.wg, &retry)
                            .map(|_| ())
                    })
                };
                // Runs until the owner sends `Shutdown`.
                while let UpdateRequest::Push(dw) = req_ch.recv(&uctx) {
                    // T.A1: store the increment in the private buffer, then
                    // T.A2-T.A4: server-side accumulate into W_g. A push
                    // that cannot go through within the retry budget is
                    // dropped: elastic averaging re-derives the lost force
                    // from the next W_x - W_g difference, whereas dying
                    // here would take the whole worker down. Pushes lost to
                    // a network partition are buffered instead (up to the
                    // staleness cap) and replayed after the heal:
                    // accumulation is commutative, so replay order is free.
                    match push(&uctx, &dw) {
                        Ok(()) => {
                            while let Some(old) = backlog.last() {
                                if push(&uctx, old).is_err() {
                                    break;
                                }
                                degraded.reconciled.fetch_add(1, Ordering::Relaxed);
                                degraded.pending.fetch_sub(1, Ordering::Relaxed);
                                backlog.pop();
                            }
                        }
                        Err(_) if staleness_cap > 0 && client.partitioned_from_server(&uctx) => {
                            if backlog.len() < staleness_cap {
                                backlog.push(dw);
                                degraded.buffered.fetch_add(1, Ordering::Relaxed);
                                degraded.pending.fetch_add(1, Ordering::Relaxed);
                            } else {
                                degraded.dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            dropped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    let reply = if hide_read {
                        // On failure fall back to a synchronous read at the
                        // next exchange instead of serving stale weights.
                        client
                            .read_retrying(&uctx, &buffers.wg, &mut wg_readback, &retry)
                            .ok()
                            .map(|()| wg_readback.clone())
                    } else {
                        None
                    };
                    done_ch.send(&uctx, reply);
                }
            });
        }
        ElasticExchanger {
            client,
            buffers,
            req_ch,
            done_ch,
            pending: false,
            prefetched_wg: None,
            moving_rate: cfg.moving_rate,
            hide_global_read: cfg.hide_global_read,
            local_mix_bps: cfg.local_mix_bps,
            wire_bytes,
            retry,
            dropped,
            degraded,
            wg: vec![0.0; param_len],
            dw: vec![0.0; param_len],
            wx: vec![0.0; param_len],
        }
    }

    /// One exchange: wait for the pending update (T.A5), read `W_g` (T1),
    /// elastically mix the trainer's weights (T2, eqs. 5–6) and hand the
    /// increment to the update thread (T3). Returns the time spent, which
    /// is the non-overlapped communication cost of the exchange.
    ///
    /// # Errors
    ///
    /// Propagates SMB failures.
    pub fn exchange<T: Trainer + ?Sized>(
        &mut self,
        ctx: &SimContext,
        trainer: &mut T,
    ) -> Result<SimDuration, PlatformError> {
        let start = ctx.now();
        // Mutual exclusion with the update thread (T.A5). Bounded wait: a
        // wedged update thread surfaces as an error instead of hanging the
        // worker forever.
        if self.pending {
            match self.done_ch.recv_timeout(ctx, EXCHANGE_TIMEOUT) {
                Some(reply) => self.prefetched_wg = reply,
                None => {
                    return Err(PlatformError::Timeout(format!(
                        "update thread unresponsive for {EXCHANGE_TIMEOUT}"
                    )))
                }
            }
            self.pending = false;
        }
        // T1: read the global weights (or take the prefetched stale copy).
        // A read lost to a network partition degrades to the last-known
        // `W_g` instead of killing the worker: training on a stale center
        // variable is exactly the minority-side degraded mode, and the
        // elastic term re-converges after the heal.
        match self.prefetched_wg.take() {
            Some(fresh) if self.hide_global_read => self.wg.copy_from_slice(&fresh),
            _ => {
                match self.client.read_retrying(ctx, &self.buffers.wg, &mut self.wg, &self.retry) {
                    Ok(()) => {}
                    Err(_) if self.client.partitioned_from_server(ctx) => {}
                    Err(e) => return Err(e.into()),
                }
            }
        }
        // T2: elastic mixing (eqs. 5-6).
        trainer.read_weights(&mut self.wx);
        for ((d, x), g) in self.dw.iter_mut().zip(self.wx.iter_mut()).zip(self.wg.iter()) {
            *d = self.moving_rate * (*x - *g);
            *x -= *d;
        }
        trainer.write_weights(&self.wx);
        let mix_secs = (self.wire_bytes as f64 * 2.0) / self.local_mix_bps;
        ctx.sleep(SimDuration::from_secs_f64(mix_secs));
        // T3: wake the update thread with the increment.
        self.req_ch.send(ctx, UpdateRequest::Push(self.dw.clone()));
        self.pending = true;
        Ok(ctx.now() - start)
    }

    /// The mixed local weights after the last [`ElasticExchanger::exchange`]
    /// (what the Hybrid-SGD root broadcasts to its group).
    pub fn mixed_weights(&self) -> &[f32] {
        &self.wx
    }

    /// The global weights `W_g` as read at the last exchange (T1) — the
    /// center variable the master checkpoints.
    pub fn global_weights(&self) -> &[f32] {
        &self.wg
    }

    /// Number of weight increments dropped because pushing them kept
    /// failing (fault injection).
    pub fn dropped_updates(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Degraded-mode accounting: increments buffered, dropped, and
    /// replayed across partition windows (see
    /// [`crate::ShmCaffeConfig::partition_staleness_cap`]).
    pub fn degraded_stats(&self) -> DegradedStats {
        self.degraded.snapshot()
    }

    /// Drains any pending update and stops the update thread.
    pub fn finish(mut self, ctx: &SimContext) {
        if self.pending {
            let _ = self.done_ch.recv(ctx);
            self.pending = false;
        }
        self.req_ch.send(ctx, UpdateRequest::Shutdown);
    }
}

/// The checkpoint segments of a run: the center variable `W_g` snapshot
/// plus a small metadata record `[checkpoint iteration, valid flag]`. Both
/// are written with the versioned checkpoint protocol
/// ([`SmbClient::checkpoint_write`]) because the master's checkpoint write
/// and a rejoining worker's read share no happens-before edge — the
/// rejoiner discovers the checkpoint through the segment table, not
/// through a message from the writer.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPlan {
    /// The checkpointed center variable (same length as `W_g`).
    pub weights: SmbBuffer,
    /// `[iter as f32, valid]` — `valid == 1.0` once any checkpoint exists.
    pub meta: SmbBuffer,
}

/// Length in f32 elements of [`CheckpointPlan::meta`].
pub const CHECKPOINT_META_LEN: usize = 2;

/// Everything a SEASGD participant needs besides its trainer.
pub struct SeasgdHarness {
    /// SMB client bound to this worker's node.
    pub client: SmbClient,
    /// The worker's buffers on the SMB server.
    pub buffers: SeasgdBuffers,
    /// The shared progress board (control info).
    pub board: ProgressBoard,
    /// Platform configuration.
    pub cfg: ShmCaffeConfig,
    /// This worker's rank.
    pub rank: usize,
    /// Iteration budget before termination alignment.
    pub target_iters: u64,
    /// Injected crash time: the worker dies at the first iteration boundary
    /// at or after this instant (`None` = never).
    pub crash_at: Option<SimTime>,
    /// Checkpoint segments: rank 0 writes the center variable there every
    /// [`ShmCaffeConfig::checkpoint_every`] iterations; a crashed worker
    /// rejoins from it when [`ShmCaffeConfig::rejoin_delay`] is set.
    pub checkpoint: Option<CheckpointPlan>,
}

/// Outcome of [`run_worker`]: the filled report plus rank-0 evaluations.
#[derive(Debug)]
pub struct SeasgdOutcome {
    /// The worker's timing report.
    pub report: WorkerReport,
    /// Evaluation trajectory (non-empty only when `eval_every > 0`, on
    /// rank 0, and the trainer supports evaluation).
    pub evals: Vec<EvalPoint>,
}

/// Runs the SEASGD protocol for one worker until its budget or the
/// termination policy stops it. Returns the timing report and evaluations.
///
/// # Errors
///
/// Propagates SMB failures.
pub fn run_worker<T: Trainer>(
    ctx: &SimContext,
    harness: SeasgdHarness,
    trainer: &mut T,
) -> Result<SeasgdOutcome, PlatformError> {
    let SeasgdHarness { client, mut buffers, board, cfg, rank, target_iters, crash_at, checkpoint } =
        harness;
    let mut report = WorkerReport::new(rank);
    let mut evals = Vec::new();
    let param_len = trainer.param_len();
    let wire_bytes = trainer.wire_bytes();

    // `None` only between a crash and a successful rejoin.
    let mut exchanger = Some(ElasticExchanger::spawn(
        ctx,
        client.clone(),
        buffers,
        param_len,
        wire_bytes,
        &cfg,
        &format!("w{rank}"),
    ));
    // Retry policy for this worker's checkpoint traffic, seeded apart from
    // the exchanger's stream so both stay deterministic.
    let ckpt_retry = RetryPolicy {
        max_attempts: 8,
        deadline: SimDuration::from_millis(500),
        ..RetryPolicy::with_seed(cfg.seed.wrapping_add(0xC4B7 + rank as u64))
    };
    let mut loss_ema = f32::NAN;
    let mut iter: u64 = 0;
    let mut stop = false;

    while !stop {
        // Injected worker death: stop publishing, heartbeating, and
        // exchanging. The exchanger teardown models the OS reaping the
        // dead process's update thread. With a checkpoint plan and a
        // rejoin delay configured, the crashed rank later comes back and
        // resumes from the latest center-variable checkpoint.
        if !report.crashed && crash_at.is_some_and(|t| ctx.now() >= t) {
            report.crashed = true;
            let dead = exchanger.take().expect("live incarnation has an exchanger");
            report.dropped_updates += dead.dropped_updates();
            let degraded = dead.degraded_stats();
            report.partition_buffered += degraded.partition_buffered;
            report.partition_dropped += degraded.partition_dropped;
            report.reconciled_updates += degraded.reconciled_updates;
            dead.finish(ctx);
            let (Some(ckpt), Some(delay)) = (checkpoint, cfg.rejoin_delay) else { break };
            ctx.sleep(delay);
            // Elastic rejoin: read the checkpoint metadata first (the
            // versioned protocol — no happens-before edge to the writer).
            let mut meta = [0.0f32; CHECKPOINT_META_LEN];
            let meta_ok = client.checkpoint_read(ctx, &ckpt.meta, &mut meta, &ckpt_retry).is_ok();
            if !meta_ok || meta[1] != 1.0 {
                // No valid checkpoint to rejoin from: announce the aborted
                // attempt on the board (so survivors stop waiting for this
                // rank) and stay dead.
                board.publish(&client, ctx, rank, iter, true)?;
                break;
            }
            let ckpt_iter = meta[0] as u64;
            let mut w = vec![0.0f32; param_len];
            client.checkpoint_read(ctx, &ckpt.weights, &mut w, &ckpt_retry)?;
            trainer.write_weights(&w);
            // Reclaim the dead incarnation's SMB state: free the old
            // increment buffer if the lease eviction has not beaten us to
            // it, acknowledge any eviction verdicts (GC'ing this rank's
            // tombstones), and resume heartbeating under a fresh lease.
            let _ = client.free(ctx, buffers.dw);
            client.ack_eviction(ctx, rank);
            let dw_key = client.create_owned(
                ctx,
                &format!("dW_{rank}_r"),
                param_len,
                Some(wire_bytes),
                rank,
            )?;
            let dw = client.alloc(ctx, dw_key)?;
            buffers = SeasgdBuffers { wg: buffers.wg, dw };
            client.heartbeat(ctx, rank);
            // Staleness accounting: how far the fleet ran ahead of the
            // checkpoint this worker restarts from.
            let snap = board.snapshot(&client, ctx)?;
            let fleet_max = snap.workers.iter().map(|p| p.iterations).max().unwrap_or(0);
            report.rejoin_staleness_iters = fleet_max.saturating_sub(ckpt_iter);
            report.rejoined = true;
            exchanger = Some(ElasticExchanger::spawn(
                ctx,
                client.clone(),
                buffers,
                param_len,
                wire_bytes,
                &cfg,
                &format!("w{rank}_r"),
            ));
            loss_ema = f32::NAN;
            iter = ckpt_iter;
            continue;
        }
        let exchanger = exchanger.as_mut().expect("only a crashed incarnation lacks one");
        if iter.is_multiple_of(cfg.update_interval as u64) {
            let comm = exchanger.exchange(ctx, trainer)?;
            report.comm_ms.record_duration_ms(comm);
        }

        // T4 + T5: train one minibatch and apply the local update (eq. 2).
        let comp_start = ctx.now();
        let loss = trainer.compute_gradients(ctx);
        trainer.apply_update(ctx);
        report.comp_ms.record_duration_ms(ctx.now() - comp_start);
        loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };
        iter += 1;

        // Center-variable checkpointing (rank 0 only): publish the W_g
        // snapshot of the last exchange plus `[iter, valid]` metadata via
        // the versioned checkpoint protocol. The segments live on the SMB
        // server and ride the replication stream to the standby, so the
        // checkpoint survives a memory-server failover.
        if rank == 0 && cfg.checkpoint_every > 0 && iter.is_multiple_of(cfg.checkpoint_every as u64)
        {
            if let Some(ckpt) = &checkpoint {
                client.checkpoint_write(
                    ctx,
                    &ckpt.weights,
                    exchanger.global_weights(),
                    &ckpt_retry,
                )?;
                client.checkpoint_write(ctx, &ckpt.meta, &[iter as f32, 1.0], &ckpt_retry)?;
            }
        }

        // Convergence instrumentation (rank 0 only).
        if rank == 0 && cfg.eval_every > 0 && iter.is_multiple_of(cfg.eval_every as u64) {
            if let Some(sample) = trainer.evaluate() {
                evals.push(EvalPoint {
                    iter,
                    time: ctx.now(),
                    loss: sample.loss,
                    top1: sample.top1,
                    topk: sample.topk,
                });
            }
        }

        // Progress sharing and termination alignment (§III-E). The
        // heartbeat keeps this worker's SMB leases alive; a crashed worker
        // stops sending them and is eventually evicted by the server.
        if iter.is_multiple_of(cfg.progress_every as u64) || iter >= target_iters {
            client.heartbeat(ctx, rank);
            board.publish(&client, ctx, rank, iter, iter >= target_iters)?;
            let snapshot = board.snapshot(&client, ctx)?;
            stop = cfg.termination.should_stop(&snapshot, iter, target_iters);
        }
    }

    if let Some(live) = exchanger {
        report.dropped_updates += live.dropped_updates();
        let degraded = live.degraded_stats();
        report.partition_buffered += degraded.partition_buffered;
        report.partition_dropped += degraded.partition_dropped;
        report.reconciled_updates += degraded.reconciled_updates;
        live.finish(ctx);
    }
    // A rejoined worker finished a full incarnation and must announce it;
    // a worker that died without rejoining never reaches the board again.
    if !report.crashed || report.rejoined {
        board.publish(&client, ctx, rank, iter, true)?;
    }

    let fault_stats = client.fault_stats();
    report.faults = fault_stats.faults;
    report.retries = fault_stats.retries;
    report.recovery_ms = fault_stats.max_recovery_ms;
    report.fenced_writes = fault_stats.fenced;
    report.iters = iter;
    report.finished_at = ctx.now();
    report.final_loss = loss_ema;
    Ok(SeasgdOutcome { report, evals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::TerminationPolicy;
    use crate::trainer::{ModeledTrainerFactory, TrainerFactory};
    use parking_lot::Mutex;
    use shmcaffe_models::WorkloadModel;
    use shmcaffe_mpi::{MpiData, MpiWorld};
    use shmcaffe_rdma::RdmaFabric;
    use shmcaffe_simnet::jitter::JitterModel;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
    use shmcaffe_simnet::Simulation;
    use shmcaffe_smb::{ShmKey, SmbServer};
    use std::sync::Arc;

    /// Assembles the full master/slave handshake and runs `n` workers.
    fn run_seasgd(
        n_workers: usize,
        nodes: usize,
        cfg: ShmCaffeConfig,
        workload: WorkloadModel,
    ) -> Vec<SeasgdOutcome> {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(nodes));
        let rdma = RdmaFabric::new(fabric.clone());
        let server = SmbServer::new(rdma).unwrap();
        let mpi = MpiWorld::new(fabric, n_workers);
        let factory = ModeledTrainerFactory::new(workload, cfg.jitter, cfg.seed);
        let outcomes: Arc<Mutex<Vec<Option<SeasgdOutcome>>>> =
            Arc::new(Mutex::new((0..n_workers).map(|_| None).collect()));

        let mut sim = Simulation::new();
        for rank in 0..n_workers {
            let server = server.clone();
            let mut comm = mpi.comm(rank);
            let factory = factory.clone();
            let outcomes = Arc::clone(&outcomes);
            let node = mpi.node_of(rank);
            sim.spawn(&format!("worker{rank}"), move |ctx| {
                let mut trainer = factory.make(rank, n_workers);
                let client = SmbClient::new(server, node);
                let (wg_key, board_key) = if rank == 0 {
                    let wg_key = client
                        .create(&ctx, "W_g", trainer.param_len(), Some(trainer.wire_bytes()))
                        .unwrap();
                    let (_board, board_key) =
                        ProgressBoard::create(&client, &ctx, "ctrl", n_workers).unwrap();
                    comm.broadcast(&ctx, 0, Some(MpiData::U64s(vec![wg_key.0, board_key.0])));
                    (wg_key, board_key)
                } else {
                    let keys = comm.broadcast(&ctx, 0, None).into_u64s();
                    (ShmKey(keys[0]), ShmKey(keys[1]))
                };
                let wg = client.alloc(&ctx, wg_key).unwrap();
                let dw_key = client
                    .create(
                        &ctx,
                        &format!("dW_{rank}"),
                        trainer.param_len(),
                        Some(trainer.wire_bytes()),
                    )
                    .unwrap();
                let dw = client.alloc(&ctx, dw_key).unwrap();
                let board = ProgressBoard::attach(&client, &ctx, board_key, n_workers).unwrap();
                let harness = SeasgdHarness {
                    client,
                    buffers: SeasgdBuffers { wg, dw },
                    board,
                    cfg,
                    rank,
                    target_iters: cfg.max_iters as u64,
                    crash_at: None,
                    checkpoint: None,
                };
                let outcome = run_worker(&ctx, harness, &mut trainer).unwrap();
                outcomes.lock()[rank] = Some(outcome);
            });
        }
        sim.run();
        let outcome_slots = std::mem::take(&mut *outcomes.lock());
        outcome_slots.into_iter().map(|o| o.expect("worker finished")).collect()
    }

    fn quick_workload() -> WorkloadModel {
        WorkloadModel::custom("test", 1_000_000, SimDuration::from_millis(10))
    }

    fn quiet(cfg: ShmCaffeConfig) -> ShmCaffeConfig {
        ShmCaffeConfig { jitter: JitterModel::NONE, ..cfg }
    }

    #[test]
    fn single_worker_completes_budget() {
        let cfg = quiet(ShmCaffeConfig { max_iters: 20, progress_every: 5, ..Default::default() });
        let out = run_seasgd(1, 1, cfg, quick_workload());
        assert_eq!(out[0].report.iters, 20);
        assert!(out[0].report.comp_ms.mean() >= 10.0);
        assert!(out[0].report.comm_ms.count() > 0);
    }

    #[test]
    fn sixteen_workers_all_finish_and_contend() {
        let cfg = quiet(ShmCaffeConfig { max_iters: 10, progress_every: 5, ..Default::default() });
        // Big 100 MB wire: contention at the server must make comm visible.
        let wl = WorkloadModel::custom("big", 100_000_000, SimDuration::from_millis(100));
        let out = run_seasgd(16, 4, cfg, wl);
        for o in &out {
            assert_eq!(o.report.iters, 10);
            assert!(o.report.comm_ms.mean() > 1.0, "comm {:.3}", o.report.comm_ms.mean());
        }
    }

    #[test]
    fn update_interval_reduces_comm() {
        let wl = quick_workload();
        let every = run_seasgd(
            4,
            1,
            quiet(ShmCaffeConfig { max_iters: 20, update_interval: 1, ..Default::default() }),
            wl.clone(),
        );
        let sparse = run_seasgd(
            4,
            1,
            quiet(ShmCaffeConfig { max_iters: 20, update_interval: 5, ..Default::default() }),
            wl,
        );
        let comm_every: f64 = every.iter().map(|o| o.report.comm_ms.sum()).sum();
        let comm_sparse: f64 = sparse.iter().map(|o| o.report.comm_ms.sum()).sum();
        assert!(
            comm_sparse < comm_every / 2.0,
            "update_interval=5 should cut communication: {comm_sparse} vs {comm_every}"
        );
    }

    #[test]
    fn first_finisher_policy_stops_early_under_skew() {
        // Strong jitter so workers drift apart; FirstFinisher should cut
        // slow workers short.
        let cfg = ShmCaffeConfig {
            max_iters: 60,
            progress_every: 2,
            termination: TerminationPolicy::FirstFinisher,
            jitter: JitterModel { sigma: 0.5, stall_probability: 0.2, stall_factor: 2.0 },
            ..Default::default()
        };
        let out = run_seasgd(4, 1, cfg, quick_workload());
        let iters: Vec<u64> = out.iter().map(|o| o.report.iters).collect();
        assert!(iters.iter().any(|&i| i >= 60), "someone reaches the budget: {iters:?}");
        assert!(iters.iter().any(|&i| i < 60), "someone stops early: {iters:?}");
    }

    #[test]
    fn zero_moving_rate_produces_zero_increments() {
        // With moving_rate = 0 no elastic force: the protocol still runs
        // (reads, writes, accumulates of zeros) and nothing diverges.
        let cfg = quiet(ShmCaffeConfig { max_iters: 5, moving_rate: 0.0, ..Default::default() });
        let out = run_seasgd(2, 1, cfg, quick_workload());
        assert_eq!(out.len(), 2);
        for o in &out {
            assert!(o.report.comm_ms.count() >= 5);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ShmCaffeConfig { max_iters: 8, ..Default::default() };
        let a = run_seasgd(4, 1, cfg, quick_workload());
        let b = run_seasgd(4, 1, cfg, quick_workload());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.report.finished_at, y.report.finished_at);
            assert_eq!(x.report.comm_ms, y.report.comm_ms);
        }
    }

    #[test]
    fn hide_global_read_shifts_time_out_of_main_path() {
        // Compute-dominated regime (the update thread's work fits inside
        // T_comp): hiding the read removes T_rgw from the critical path.
        // When the server is saturated instead, hiding buys nothing — the
        // update thread just gets longer — which is part of why the paper
        // keeps the read synchronous.
        let wl = WorkloadModel::custom("w", 200_000_000, SimDuration::from_millis(300));
        let visible = run_seasgd(
            2,
            1,
            quiet(ShmCaffeConfig { max_iters: 15, hide_global_read: false, ..Default::default() }),
            wl.clone(),
        );
        let hidden = run_seasgd(
            2,
            1,
            quiet(ShmCaffeConfig { max_iters: 15, hide_global_read: true, ..Default::default() }),
            wl,
        );
        let t_visible = visible.iter().map(|o| o.report.finished_at).max().unwrap();
        let t_hidden = hidden.iter().map(|o| o.report.finished_at).max().unwrap();
        assert!(
            t_hidden < t_visible,
            "hiding the read must shorten the run: {t_hidden} vs {t_visible}"
        );
    }
}
