//! Verifies the SEASGD update algebra (paper eqs. 2–7) end-to-end against
//! a hand-computed reference, using the deterministic modeled trainer.

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_repro::models::WorkloadModel;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::ShmCaffeA;
use shmcaffe_repro::platform::trainer::{ModeledTrainerFactory, Trainer, TrainerFactory};
use shmcaffe_repro::simnet::jitter::JitterModel;
use shmcaffe_repro::simnet::topology::ClusterSpec;
use shmcaffe_repro::simnet::{SimDuration, Simulation};

fn workload() -> WorkloadModel {
    WorkloadModel::custom("algebra", 1_000_000, SimDuration::from_millis(5))
}

/// Hand-rolls one worker's SEASGD against a local "global buffer",
/// following eqs. 2 and 5–7 exactly (update_interval 1).
fn reference_single_worker(alpha: f32, iters: usize) -> (Vec<f32>, Vec<f32>) {
    let f = ModeledTrainerFactory::new(workload(), JitterModel::NONE, 42);
    let out: Arc<Mutex<(Vec<f32>, Vec<f32>)>> = Arc::new(Mutex::new((Vec::new(), Vec::new())));
    let out2 = Arc::clone(&out);
    let mut sim = Simulation::new();
    sim.spawn("ref", move |ctx| {
        let mut t = f.make(0, 1);
        let n = t.param_len();
        // The master seeds W_g with its initial weights.
        let mut wg = vec![0.0f32; n];
        t.read_weights(&mut wg);
        let mut wx = vec![0.0f32; n];
        for _ in 0..iters {
            // T1/T2: ΔW = α (W_x − W_g); W_x ← W_x − ΔW (eqs. 5, 6).
            t.read_weights(&mut wx);
            let dw: Vec<f32> = wx.iter().zip(wg.iter()).map(|(x, g)| alpha * (x - g)).collect();
            for (x, d) in wx.iter_mut().zip(dw.iter()) {
                *x -= d;
            }
            t.write_weights(&wx);
            // T.A3: W_g ← W_g + ΔW (eq. 7).
            for (g, d) in wg.iter_mut().zip(dw.iter()) {
                *g += d;
            }
            // T4/T5: local gradient step (eq. 2).
            t.compute_gradients(&ctx);
            t.apply_update(&ctx);
        }
        t.read_weights(&mut wx);
        *out2.lock() = (wx.clone(), wg.clone());
    });
    sim.run();
    let result = out.lock().clone();
    result
}

#[test]
fn platform_single_worker_matches_hand_computed_elastic_updates() {
    let alpha = 0.2f32;
    let iters = 10usize;
    let (ref_wx, ref_wg) = reference_single_worker(alpha, iters);

    let cfg = ShmCaffeConfig {
        max_iters: iters,
        moving_rate: alpha,
        update_interval: 1,
        progress_every: 5,
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let report = ShmCaffeA::new(ClusterSpec::paper_testbed(1), 1, cfg)
        .run(ModeledTrainerFactory::new(workload(), JitterModel::NONE, 42))
        .expect("platform runs");
    let got_wg = report.final_weights.expect("master reads W_g");

    assert_eq!(got_wg.len(), ref_wg.len());
    let max_diff =
        got_wg.iter().zip(ref_wg.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
    assert!(max_diff < 1e-5, "W_g diverged from eq. 5-7 algebra by {max_diff}");
    // Sanity: training actually moved the weights.
    assert!(ref_wx.iter().any(|&v| v != 0.0));
    assert!(got_wg.iter().any(|&v| v != 0.0));
}

#[test]
fn elastic_exchange_conserves_total_mass() {
    // EASGD's exchange moves ΔW from the worker to the global buffer:
    // W_x ← W_x − ΔW and W_g ← W_g + ΔW (eqs. 6–7), so the quantity
    // S = W_g + Σ_x W_x changes only by what the local updates inject.
    // Drive 4 workers whose "gradient step" adds a constant, zero-mean
    // drift per rank (−1.5, −0.5, +0.5, +1.5); S must stay at its initial
    // value up to f32 rounding, no matter how exchanges interleave — and
    // despite W_g staleness between read and accumulate.
    struct Drifter {
        w: Vec<f32>,
        drift: f32,
        sink: Arc<Mutex<Vec<Vec<f32>>>>,
        rank: usize,
    }
    impl Trainer for Drifter {
        fn param_len(&self) -> usize {
            self.w.len()
        }
        fn wire_bytes(&self) -> u64 {
            (self.w.len() * 4) as u64
        }
        fn compute_gradients(&mut self, ctx: &shmcaffe_repro::simnet::SimContext) -> f32 {
            ctx.sleep(SimDuration::from_millis(1 + self.rank as u64));
            0.0
        }
        fn apply_update(&mut self, _ctx: &shmcaffe_repro::simnet::SimContext) {
            for v in self.w.iter_mut() {
                *v += self.drift;
            }
        }
        fn read_weights(&mut self, out: &mut [f32]) {
            out.copy_from_slice(&self.w);
        }
        fn write_weights(&mut self, w: &[f32]) {
            self.w.copy_from_slice(w);
        }
        fn read_grads(&mut self, out: &mut [f32]) {
            out.fill(0.0);
        }
        fn write_grads(&mut self, _g: &[f32]) {}
        fn evaluate(&mut self) -> Option<shmcaffe_repro::platform::trainer::EvalSample> {
            None
        }
    }
    impl Drop for Drifter {
        fn drop(&mut self) {
            self.sink.lock()[self.rank] = self.w.clone();
        }
    }
    struct DrifterFactory {
        sink: Arc<Mutex<Vec<Vec<f32>>>>,
    }
    impl TrainerFactory for DrifterFactory {
        type Output = Drifter;
        fn make(&self, rank: usize, _n: usize) -> Drifter {
            Drifter {
                w: vec![1.0; 64],
                drift: rank as f32 - 1.5,
                sink: Arc::clone(&self.sink),
                rank,
            }
        }
    }

    let sink: Arc<Mutex<Vec<Vec<f32>>>> = Arc::new(Mutex::new(vec![Vec::new(); 4]));
    let cfg = ShmCaffeConfig {
        max_iters: 50,
        moving_rate: 0.25,
        progress_every: 10,
        // FixedIterations so every worker runs exactly 50 iterations and
        // the total injected drift is exactly zero.
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let report = ShmCaffeA::new(ClusterSpec::paper_testbed(1), 4, cfg)
        .run(DrifterFactory { sink: Arc::clone(&sink) })
        .expect("platform runs");
    let wg = report.final_weights.expect("master reads W_g");
    let finals = sink.lock().clone();
    for w in &finals {
        assert_eq!(w.len(), 64, "every worker deposited its final weights");
    }
    // S(0) = 1 (W_g) + 4 x 1 (workers) = 5 per component; drift sums to 0.
    for i in 0..64 {
        let s: f32 = wg[i] + finals.iter().map(|w| w[i]).sum::<f32>();
        assert!((s - 5.0).abs() < 1e-3, "component {i}: mass {s} != 5");
    }
    // And the exchange did real work: W_g moved off its seed.
    assert!(wg.iter().any(|&v| (v - 1.0).abs() > 1e-3));
}

#[test]
fn timed_runs_are_reproducible_across_processes() {
    let run = || {
        let cfg =
            ShmCaffeConfig { max_iters: 20, progress_every: 5, seed: 7, ..Default::default() };
        ShmCaffeA::new(ClusterSpec::paper_testbed(2), 8, cfg)
            .run(ModeledTrainerFactory::new(workload(), JitterModel::hpc_default(), 7))
            .expect("platform runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.wall, b.wall, "virtual wall time must be bit-identical");
    assert_eq!(a.final_weights, b.final_weights);
    for (x, y) in a.workers.iter().zip(b.workers.iter()) {
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.iters, y.iters);
    }
}
