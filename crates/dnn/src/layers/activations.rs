//! Element-wise activation layers: ReLU, Sigmoid, Tanh.

use shmcaffe_tensor::ops;
use shmcaffe_tensor::Tensor;

use crate::{DnnError, Layer, Phase};

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    name: String,
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new(name: &str) -> Self {
        Relu { name: name.to_string(), cached_input: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let mut out = Tensor::zeros(input.dims());
        ops::relu_forward(input.data(), out.data_mut());
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let input = self.cached_input.as_ref().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward called before forward".to_string(),
        })?;
        if d_output.len() != input.len() {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output length mismatch".to_string(),
            });
        }
        let mut d_input = Tensor::zeros(input.dims());
        ops::relu_backward(input.data(), d_output.data(), d_input.data_mut());
        Ok(d_input)
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    name: String,
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new(name: &str) -> Self {
        Sigmoid { name: name.to_string(), cached_output: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let mut out = Tensor::zeros(input.dims());
        ops::sigmoid_forward(input.data(), out.data_mut());
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let output = self.cached_output.as_ref().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward called before forward".to_string(),
        })?;
        if d_output.len() != output.len() {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output length mismatch".to_string(),
            });
        }
        let mut d_input = Tensor::zeros(output.dims());
        ops::sigmoid_backward(output.data(), d_output.data(), d_input.data_mut());
        Ok(d_input)
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    name: String,
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new(name: &str) -> Self {
        Tanh { name: name.to_string(), cached_output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let mut out = Tensor::zeros(input.dims());
        ops::tanh_forward(input.data(), out.data_mut());
        self.cached_output = Some(out.clone());
        Ok(out)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let output = self.cached_output.as_ref().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward called before forward".to_string(),
        })?;
        if d_output.len() != output.len() {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output length mismatch".to_string(),
            });
        }
        let mut d_input = Tensor::zeros(output.dims());
        ops::tanh_backward(output.data(), d_output.data(), d_input.data_mut());
        Ok(d_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut l = Relu::new("r");
        let x = Tensor::from_slice(&[-1.0, 2.0]);
        let y = l.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.data(), &[0.0, 2.0]);
        let dx = l.backward(&Tensor::from_slice(&[3.0, 3.0])).unwrap();
        assert_eq!(dx.data(), &[0.0, 3.0]);
    }

    #[test]
    fn sigmoid_output_range() {
        let mut l = Sigmoid::new("s");
        let x = Tensor::from_slice(&[-10.0, 0.0, 10.0]);
        let y = l.forward(&x, Phase::Test).unwrap();
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        let dx = l.backward(&Tensor::from_slice(&[1.0, 1.0, 1.0])).unwrap();
        // Derivative maximal at 0.
        assert!(dx.data()[1] > dx.data()[0] && dx.data()[1] > dx.data()[2]);
    }

    #[test]
    fn tanh_is_odd() {
        let mut l = Tanh::new("t");
        let x = Tensor::from_slice(&[-1.0, 1.0]);
        let y = l.forward(&x, Phase::Test).unwrap();
        assert!((y.data()[0] + y.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn backward_without_forward_errors() {
        assert!(Relu::new("r").backward(&Tensor::from_slice(&[1.0])).is_err());
        assert!(Sigmoid::new("s").backward(&Tensor::from_slice(&[1.0])).is_err());
        assert!(Tanh::new("t").backward(&Tensor::from_slice(&[1.0])).is_err());
    }

    #[test]
    fn length_mismatch_errors() {
        let mut l = Relu::new("r");
        l.forward(&Tensor::from_slice(&[1.0, 2.0]), Phase::Train).unwrap();
        assert!(l.backward(&Tensor::from_slice(&[1.0])).is_err());
    }
}
