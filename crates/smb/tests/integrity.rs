//! Deterministic end-to-end integrity flows: detection poisons the exact
//! page, retrying clients repair poisoned pages from the pair's other
//! member, single-route corruption is permanent, wire faults from a seeded
//! plan are detected and retried through, and the whole pipeline replays
//! bit-identically under the same seed.

use parking_lot::Mutex;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{SimDuration, SimTime, Simulation};
use shmcaffe_smb::{RetryPolicy, SmbClient, SmbError, SmbPair, SmbServer, SmbServerConfig};
use std::sync::Arc;

const PAGE: usize = 4;
const ELEMS: usize = 8; // two pages per segment

fn paged_config() -> SmbServerConfig {
    SmbServerConfig { page_elems: PAGE, ..SmbServerConfig::default() }
}

fn paged_single(plan: Option<FaultPlan>) -> SmbServer {
    let spec = ClusterSpec::paper_testbed(1);
    let fabric = match plan {
        Some(p) => Fabric::with_faults(spec, p),
        None => Fabric::new(spec),
    };
    SmbServer::with_config(RdmaFabric::new(fabric), paged_config()).unwrap()
}

fn paged_pair(plan: Option<FaultPlan>) -> SmbPair {
    let spec = ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(1) };
    let fabric = match plan {
        Some(p) => Fabric::with_faults(spec, p),
        None => Fabric::new(spec),
    };
    SmbPair::new(RdmaFabric::new(fabric), paged_config()).unwrap()
}

/// A bit flip on the primary is detected by the next retrying read, which
/// repairs the page from the standby and returns the original bytes; the
/// poison clears and every counter moves exactly once.
#[test]
fn retrying_read_repairs_flipped_page_from_standby() {
    let pair = paged_pair(None);
    let p = pair.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::with_failover(p.clone(), NodeId(0));
        let policy = RetryPolicy::with_seed(5);
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        let payload: Vec<f32> = (0..ELEMS).map(|i| i as f32 * 0.5 + 1.0).collect();
        client.write(&ctx, &buf, &payload).unwrap();
        p.replicate(&ctx).unwrap();
        p.primary().inject_bit_flip(key, 5, 7).unwrap();
        let mut out = vec![0.0f32; ELEMS];
        client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
        assert_eq!(out, payload, "repair must restore the replicated bytes");
        assert!(p.primary().poisoned_pages(key).is_empty(), "poison must clear");
        assert_eq!(p.repairs_completed(), 1);
        assert_eq!(p.primary().corruptions_detected(), 1);
        let fs = client.fault_stats();
        assert_eq!(fs.corruptions_detected, 1, "{fs:?}");
        assert_eq!(fs.corruptions_repaired, 1, "{fs:?}");
        assert_eq!(fs.corruptions_unrepairable, 0, "{fs:?}");
        // The repaired segment keeps serving plain reads.
        let mut again = vec![0.0f32; ELEMS];
        client.read(&ctx, &buf, &mut again).unwrap();
        assert_eq!(again, payload);
    });
    sim.run();
}

/// Without a replica there is nowhere to repair from: the retrying read
/// escalates the poisoned page to a permanent [`SmbError::Unrepairable`]
/// instead of burning its attempt budget.
#[test]
fn single_route_corruption_is_unrepairable() {
    let server = paged_single(None);
    let s = server.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::new(s.clone(), NodeId(0));
        let policy = RetryPolicy::with_seed(5);
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        client.write(&ctx, &buf, &[2.0f32; ELEMS]).unwrap();
        s.inject_bit_flip(key, 1, 3).unwrap();
        let mut out = vec![0.0f32; ELEMS];
        match client.read_retrying(&ctx, &buf, &mut out, &policy) {
            Err(SmbError::Unrepairable { page: 0, .. }) => {}
            other => panic!("want Unrepairable page 0, got {other:?}"),
        }
        let fs = client.fault_stats();
        assert_eq!(fs.corruptions_detected, 1, "{fs:?}");
        assert_eq!(fs.corruptions_unrepairable, 1, "{fs:?}");
        assert_eq!(fs.corruptions_repaired, 0, "{fs:?}");
        // The poison is sticky: later reads keep failing loudly rather
        // than serving bad bytes.
        assert!(client.read(&ctx, &buf, &mut out).is_err());
        assert_eq!(s.poisoned_pages(key), vec![0]);
    });
    sim.run();
}

/// When the same page rots on both members the repair source fails its own
/// CRC check and the client reports the loss as permanent.
#[test]
fn corruption_on_both_replicas_is_unrepairable() {
    let pair = paged_pair(None);
    let p = pair.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::with_failover(p.clone(), NodeId(0));
        let policy = RetryPolicy::with_seed(5);
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        client.write(&ctx, &buf, &[3.0f32; ELEMS]).unwrap();
        p.replicate(&ctx).unwrap();
        p.primary().inject_bit_flip(key, 0, 1).unwrap();
        p.standby().inject_bit_flip(key, 2, 9).unwrap();
        let mut out = vec![0.0f32; ELEMS];
        match client.read_retrying(&ctx, &buf, &mut out, &policy) {
            Err(SmbError::Unrepairable { page: 0, .. }) => {}
            other => panic!("want Unrepairable page 0, got {other:?}"),
        }
        assert_eq!(p.repairs_completed(), 0);
        let fs = client.fault_stats();
        assert_eq!(fs.corruptions_unrepairable, 1, "{fs:?}");
        // Both members flagged the rot on their own copies.
        assert_eq!(p.primary().corruptions_detected(), 1);
        assert_eq!(p.standby().corruptions_detected(), 1);
    });
    sim.run();
}

/// Seeded wire bit-flips fail the end-to-end checksum on delivery; the
/// retrying read keeps the fault out of the caller's buffer and lands a
/// clean copy within its attempt budget.
#[test]
fn wire_flips_are_detected_and_retried_through() {
    let plan = FaultPlan::new(42).with_wire_flip_prob(0.4);
    let server = paged_single(Some(plan));
    let s = server.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::new(s.clone(), NodeId(0));
        let policy = RetryPolicy { max_attempts: 12, ..RetryPolicy::with_seed(42) };
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        let payload: Vec<f32> = (0..ELEMS).map(|i| (i as f32).sin()).collect();
        client.write_retrying(&ctx, &buf, &payload, &policy).unwrap();
        let mut hits = 0u64;
        for _ in 0..8 {
            let mut out = vec![0.0f32; ELEMS];
            client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
            assert_eq!(out, payload, "wire fault must never reach the caller");
            hits = client.fault_stats().corruptions_detected;
        }
        assert!(hits >= 1, "seed 42 at p=0.4 must flip at least once");
        let inj = s.rdma().fabric().fault_injector().unwrap().stats();
        assert!(inj.wire_flips >= 1, "{inj:?}");
        let fs = client.fault_stats();
        assert_eq!(fs.corruptions_repaired, 0, "wire faults retry, not repair: {fs:?}");
        assert_eq!(fs.corruptions_unrepairable, 0, "{fs:?}");
    });
    sim.run();
}

/// A torn write records the writer's intent, so the undelivered tail fails
/// verification on the next read and is repaired back to the replicated
/// bytes — page-level atomicity instead of silent half-writes.
#[test]
fn torn_write_tail_is_repaired_from_standby() {
    let pair = paged_pair(None);
    let p = pair.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::with_failover(p.clone(), NodeId(0));
        let policy = RetryPolicy { max_attempts: 8, ..RetryPolicy::with_seed(7) };
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        let base: Vec<f32> = (0..ELEMS).map(|i| i as f32).collect();
        client.write(&ctx, &buf, &base).unwrap();
        p.replicate(&ctx).unwrap();
        // The cable drops mid-transfer: nothing lands, but the intent CRCs
        // were recorded, so both pages now disagree with their bytes.
        let intended: Vec<f32> = base.iter().map(|v| v + 10.0).collect();
        p.primary().inject_torn_write(&ctx, key, 0, &intended, 0).unwrap();
        let mut out = vec![0.0f32; ELEMS];
        client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
        assert_eq!(out, base, "tail pages roll back to the replicated bytes");
        assert_eq!(p.repairs_completed(), 2, "one repair per torn page");
        assert!(p.primary().poisoned_pages(key).is_empty());
        let fs = client.fault_stats();
        assert_eq!(fs.corruptions_detected, 2, "{fs:?}");
        assert_eq!(fs.corruptions_repaired, 2, "{fs:?}");
    });
    sim.run();
}

/// Plan-driven torn writes through the retrying path degrade to page
/// atomicity: after repair, every page reads back as either the old or the
/// new generation in full — the delivered prefix keeps what landed whole,
/// the torn tail rolls back — and nothing in between.
#[test]
fn seeded_torn_writes_degrade_to_page_atomicity() {
    let plan = FaultPlan::new(9).with_torn_write_prob(1.0);
    let pair = paged_pair(Some(plan));
    let p = pair.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::with_failover(p.clone(), NodeId(0));
        let policy = RetryPolicy { max_attempts: 8, ..RetryPolicy::with_seed(9) };
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        let base: Vec<f32> = (0..ELEMS).map(|i| i as f32).collect();
        client.write(&ctx, &buf, &base).unwrap();
        p.replicate(&ctx).unwrap();
        let intended: Vec<f32> = base.iter().map(|v| v + 100.0).collect();
        // Every attempt tears (p = 1.0), so the ack means "prefix landed,
        // intent recorded", not "all bytes landed".
        client.write_retrying(&ctx, &buf, &intended, &policy).unwrap();
        let mut out = vec![0.0f32; ELEMS];
        client.read_retrying(&ctx, &buf, &mut out, &policy).unwrap();
        let mut new_pages = 0usize;
        for page in 0..ELEMS / PAGE {
            let span = &out[page * PAGE..(page + 1) * PAGE];
            if span == &intended[page * PAGE..(page + 1) * PAGE] {
                new_pages += 1;
                assert_eq!(new_pages, page + 1, "new-generation pages form a prefix");
            } else {
                assert_eq!(span, &base[page * PAGE..(page + 1) * PAGE], "page {page} mixed bytes");
            }
        }
        assert!(new_pages < ELEMS / PAGE, "p = 1.0 tears every attempt, tail must roll back");
        let fs = client.fault_stats();
        assert!(fs.corruptions_detected >= 1, "{fs:?}");
        assert_eq!(fs.corruptions_detected, fs.corruptions_repaired, "{fs:?}");
        let inj = p.primary().rdma().fabric().fault_injector().unwrap().stats();
        assert!(inj.torn_writes >= 1, "{inj:?}");
    });
    sim.run();
}

/// Scheduled DRAM decay is found by the scrub pass once its virtual time
/// arrives, and the poisoned page then fails loudly on the read path.
#[test]
fn scrub_pass_finds_scheduled_dram_decay() {
    let memory_node = NodeId(ClusterSpec::paper_testbed(1).gpu_nodes);
    let plan = FaultPlan::new(11).decay_dram(memory_node, SimTime::from_millis(5));
    let server = paged_single(Some(plan));
    let s = server.clone();
    let mut sim = Simulation::new();
    sim.spawn("w", move |ctx| {
        let client = SmbClient::new(s.clone(), NodeId(0));
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        client.write(&ctx, &buf, &[4.0f32; ELEMS]).unwrap();
        // Before the decay's virtual time the grid verifies clean.
        assert_eq!(s.scrub_pass(&ctx), 0);
        ctx.sleep_until(SimTime::from_millis(6));
        assert_eq!(s.scrub_pass(&ctx), 1, "one decayed page newly poisoned");
        assert_eq!(s.corruptions_detected(), 1);
        let inj = s.rdma().fabric().fault_injector().unwrap().stats();
        assert_eq!(inj.dram_decays_applied, 1, "{inj:?}");
        let mut out = vec![0.0f32; ELEMS];
        match client.read(&ctx, &buf, &mut out) {
            Err(SmbError::Corrupted { .. }) => {}
            other => panic!("decayed page must fail the read, got {other:?}"),
        }
        // A second pass reports nothing new: poison is counted once.
        assert_eq!(s.scrub_pass(&ctx), 0);
        assert_eq!(s.corruptions_detected(), 1);
    });
    sim.run();
}

/// The background scrubber process finds decay on its own cadence — no
/// client read needed — and stops cleanly when asked.
#[test]
fn background_scrubber_finds_decay_between_reads() {
    let memory_node = NodeId(ClusterSpec::paper_testbed(1).gpu_nodes);
    let plan = FaultPlan::new(13).decay_dram(memory_node, SimTime::from_millis(3));
    let cfg = SmbServerConfig {
        page_elems: PAGE,
        scrub_interval: SimDuration::from_millis(2),
        ..SmbServerConfig::default()
    };
    let spec = ClusterSpec::paper_testbed(1);
    let server =
        SmbServer::with_config(RdmaFabric::new(Fabric::with_faults(spec, plan)), cfg).unwrap();
    let s = server.clone();
    let scrub = server.clone();
    let mut sim = Simulation::new();
    sim.spawn("scrubber", move |ctx| scrub.run_scrubber(&ctx));
    sim.spawn("w", move |ctx| {
        let client = SmbClient::new(s.clone(), NodeId(0));
        let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
        let buf = client.alloc(&ctx, key).unwrap();
        client.write(&ctx, &buf, &[5.0f32; ELEMS]).unwrap();
        ctx.sleep_until(SimTime::from_millis(10));
        assert_eq!(s.corruptions_detected(), 1, "scrubber found the decay unprompted");
        assert_eq!(s.poisoned_pages(key).len(), 1);
        s.stop_scrubber();
    });
    sim.run();
}

/// The whole detect → repair pipeline is a pure function of the seed: two
/// runs produce bit-identical repaired bytes, identical counters, and an
/// identical virtual clock.
#[test]
fn repair_pipeline_replays_bit_identically() {
    /// (repaired bytes, detected, repaired, pair repairs, virtual clock).
    type RunOutcome = (Vec<f32>, u64, u64, u64, SimTime);
    fn run_once() -> RunOutcome {
        let plan = FaultPlan::new(77).with_wire_flip_prob(0.3);
        let pair = paged_pair(Some(plan));
        let p = pair.clone();
        let out: Arc<Mutex<RunOutcome>> =
            Arc::new(Mutex::new((Vec::new(), 0, 0, 0, SimTime::ZERO)));
        let o2 = Arc::clone(&out);
        let mut sim = Simulation::new();
        sim.spawn("w", move |ctx| {
            let client = SmbClient::with_failover(p.clone(), NodeId(0));
            let policy = RetryPolicy { max_attempts: 12, ..RetryPolicy::with_seed(77) };
            let key = client.create(&ctx, "wg", ELEMS, None).unwrap();
            let buf = client.alloc(&ctx, key).unwrap();
            let payload: Vec<f32> = (0..ELEMS).map(|i| i as f32 * 1.25).collect();
            client.write(&ctx, &buf, &payload).unwrap();
            p.replicate(&ctx).unwrap();
            p.primary().inject_bit_flip(key, 6, 2).unwrap();
            let mut data = vec![0.0f32; ELEMS];
            client.read_retrying(&ctx, &buf, &mut data, &policy).unwrap();
            let fs = client.fault_stats();
            *o2.lock() = (
                data,
                fs.corruptions_detected,
                fs.corruptions_repaired,
                p.repairs_completed(),
                ctx.now(),
            );
        });
        sim.run();
        let guard = out.lock();
        guard.clone()
    }
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "same seed must replay bit-identically");
    assert!(a.1 >= 1, "the flip was detected");
    assert_eq!(a.3, 1, "and repaired exactly once");
}
