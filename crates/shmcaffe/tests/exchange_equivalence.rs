//! Bit-identity of the pipelined chunked exchange (DESIGN.md §5g).
//!
//! The chunk grid is derived only from `param_len` and the
//! `exchange_chunk_elems` knob — never from timing — and the elastic
//! mixing is elementwise, so *any* chunking of the exchange must produce
//! exactly the same weights as the monolithic read→mix→push path: same
//! bits, for every chunk size and every thread count. These tests run a
//! real single-worker SEASGD loop against a live SMB server and compare
//! the final mixed weights `W_x` bit-for-bit.

use proptest::prelude::*;
use shmcaffe::seasgd::{ElasticExchanger, SeasgdBuffers};
use shmcaffe::trainer::{ModeledTrainerFactory, Trainer, TrainerFactory};
use shmcaffe::ShmCaffeConfig;
use shmcaffe_models::WorkloadModel;
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_simnet::{SimDuration, Simulation};
use shmcaffe_smb::SmbClient;
use shmcaffe_tensor::parallel;
use std::sync::Arc;
use std::sync::Mutex;

const ITERS: usize = 3;
const PARAM_LEN: usize = WorkloadModel::DEFAULT_PARAM_ELEMS;

/// Runs a single worker for [`ITERS`] compute/exchange rounds and returns
/// the final mixed weights. `chunk_elems = None` selects the monolithic
/// exchange; `Some(n)` the pipelined one with an `n`-element grid.
fn final_weights(chunk_elems: Option<usize>) -> Vec<f32> {
    let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
    let workload = WorkloadModel::custom("equiv", 4_000_000, SimDuration::from_millis(5));
    let factory = ModeledTrainerFactory::new(workload, JitterModel::NONE, 99);
    let cfg = ShmCaffeConfig {
        pipelined_exchange: chunk_elems.is_some(),
        exchange_chunk_elems: chunk_elems.unwrap_or(0),
        jitter: JitterModel::NONE,
        ..Default::default()
    };
    let out = Arc::new(Mutex::new(Vec::new()));

    let mut sim = Simulation::new();
    {
        let server =
            shmcaffe_smb::SmbServer::new(rdma).expect("fresh fabric hosts a memory server");
        let out = Arc::clone(&out);
        sim.spawn("worker", move |ctx| {
            let mut trainer = factory.make(0, 1);
            let param_len = trainer.param_len();
            let wire = trainer.wire_bytes();
            let client = SmbClient::new(server, NodeId(0));
            let wg_key = client.create(&ctx, "W_g", param_len, Some(wire)).expect("unique names");
            let wg = client.alloc(&ctx, wg_key).expect("just created");
            let mut w0 = vec![0.0f32; param_len];
            trainer.read_weights(&mut w0);
            client.write(&ctx, &wg, &w0).expect("sizes match");
            let dw_key = client.create(&ctx, "dW_0", param_len, Some(wire)).expect("unique names");
            let dw = client.alloc(&ctx, dw_key).expect("just created");

            let mut ex = ElasticExchanger::spawn(
                &ctx,
                client,
                SeasgdBuffers { wg, dw },
                param_len,
                wire,
                &cfg,
                "equiv",
            );
            for _ in 0..ITERS {
                let _loss = trainer.compute_gradients(&ctx);
                trainer.apply_update(&ctx);
                ex.exchange(&ctx, &mut trainer).expect("fault-free fabric");
            }
            let weights = ex.mixed_weights().to_vec();
            ex.finish(&ctx);
            *out.lock().expect("worker is the only writer") = weights;
        });
    }
    sim.run();
    let weights = out.lock().expect("simulation finished").clone();
    assert_eq!(weights.len(), PARAM_LEN, "worker must have produced weights");
    weights
}

fn assert_bit_identical(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: weights diverge at [{i}]: {x:?} ({:#010x}) vs {y:?} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// The paper-shaped grids: one element per tile, an odd size that
/// misaligns with every boundary, the whole vector in one tile, and a
/// tile larger than the vector (degenerate monolithic). All must match
/// the monolithic exchange bit-for-bit, at 1 and 4 threads.
#[test]
fn boundary_chunk_sizes_match_monolithic_bitwise() {
    for threads in [1usize, 4] {
        parallel::with_threads(threads, || {
            let mono = final_weights(None);
            for chunk in [1usize, 1023, PARAM_LEN, PARAM_LEN + 1000] {
                let chunked = final_weights(Some(chunk));
                assert_bit_identical(
                    &mono,
                    &chunked,
                    &format!("chunk_elems={chunk} threads={threads}"),
                );
            }
        });
    }
}

/// The default auto grid (`exchange_chunk_elems = 0`, sixteen tiles) is
/// invariant across thread counts: same bits at 1, 2 and 4 threads.
#[test]
fn default_grid_is_thread_count_invariant() {
    let one = parallel::with_threads(1, || final_weights(Some(0)));
    for threads in [2usize, 4] {
        let more = parallel::with_threads(threads, || final_weights(Some(0)));
        assert_bit_identical(&one, &more, &format!("threads={threads}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any chunk size at all — aligned, prime, pathological — yields the
    /// same bits as the monolithic exchange.
    #[test]
    fn any_chunk_size_matches_monolithic_bitwise(chunk in 1usize..PARAM_LEN + 65) {
        let mono = final_weights(None);
        let chunked = final_weights(Some(chunk));
        assert_bit_identical(&mono, &chunked, &format!("chunk_elems={chunk}"));
    }
}
