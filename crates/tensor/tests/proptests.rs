//! Property-based tests for the tensor algebra kernels.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use shmcaffe_tensor::conv::{col2im, im2col, Conv2dGeometry};
use shmcaffe_tensor::gemm::{gemm, Transpose};
use shmcaffe_tensor::ops;
use shmcaffe_tensor::softmax::{softmax, softmax_cross_entropy_backward};
use shmcaffe_tensor::Tensor;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..100).prop_map(|v| v as f32 / 10.0)
}

proptest! {
    /// gemm with the identity matrix returns the operand.
    #[test]
    fn gemm_identity(n in 1usize..8, data in pvec(-10.0f32..10.0, 64)) {
        let a: Vec<f32> = data.iter().take(n * n).cloned().collect();
        prop_assume!(a.len() == n * n);
        let mut identity = vec![0.0f32; n * n];
        for i in 0..n {
            identity[i * n + i] = 1.0;
        }
        let mut c = vec![0.0f32; n * n];
        gemm(Transpose::No, Transpose::No, n, n, n, 1.0, &a, &identity, 0.0, &mut c);
        for (got, want) in c.iter().zip(a.iter()) {
            prop_assert!((got - want).abs() < 1e-4);
        }
    }

    /// (A * B)^T == B^T * A^T, computed through the transpose flags.
    #[test]
    fn gemm_transpose_identity(
        m in 1usize..6, n in 1usize..6, k in 1usize..6,
        seed in 0u32..1000,
    ) {
        let gen = |len: usize, s: u32| -> Vec<f32> {
            let mut state = s.wrapping_mul(747796405).wrapping_add(2891336453);
            (0..len).map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                ((state >> 16) as f32 / 65536.0) - 0.5
            }).collect()
        };
        let a = gen(m * k, seed);
        let b = gen(k * n, seed + 1);
        // C1 = A * B (m x n)
        let mut c1 = vec![0.0f32; m * n];
        gemm(Transpose::No, Transpose::No, m, n, k, 1.0, &a, &b, 0.0, &mut c1);
        // C2 = B^T * A^T computed with transposes; result is n x m and should be C1^T.
        let mut c2 = vec![0.0f32; n * m];
        gemm(Transpose::Yes, Transpose::Yes, n, m, k, 1.0, &b, &a, 0.0, &mut c2);
        for i in 0..m {
            for j in 0..n {
                prop_assert!((c1[i * n + j] - c2[j * m + i]).abs() < 1e-4);
            }
        }
    }

    /// axpy(a, x, y) then axpy(-a, x, y) restores y.
    #[test]
    fn axpy_inverse(alpha in small_f32(), x in pvec(small_f32(), 1..64)) {
        let y0: Vec<f32> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let mut y = y0.clone();
        ops::axpy(alpha, &x, &mut y);
        ops::axpy(-alpha, &x, &mut y);
        for (got, want) in y.iter().zip(y0.iter()) {
            prop_assert!((got - want).abs() < 1e-3);
        }
    }

    /// dot is symmetric and dot(x, x) == |x|^2 >= 0.
    #[test]
    fn dot_symmetry(x in pvec(small_f32(), 1..64)) {
        let y: Vec<f32> = x.iter().rev().cloned().collect();
        prop_assert!((ops::dot(&x, &y) - ops::dot(&y, &x)).abs() < 1e-3);
        prop_assert!(ops::dot(&x, &x) >= 0.0);
    }

    /// Softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_is_distribution(rows in 1usize..5, classes in 2usize..10, seed in 0u32..500) {
        let mut state = seed.wrapping_mul(2654435761);
        let logits: Vec<f32> = (0..rows * classes).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            (((state >> 16) as f32 / 65536.0) - 0.5) * 20.0
        }).collect();
        let mut probs = vec![0.0f32; rows * classes];
        softmax(rows, classes, &logits, &mut probs);
        for r in 0..rows {
            let row = &probs[r * classes..(r + 1) * classes];
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// The softmax cross-entropy gradient sums to zero over every row.
    #[test]
    fn ce_gradient_rows_sum_zero(classes in 2usize..8, label in 0usize..8, seed in 0u32..500) {
        let label = label % classes;
        let mut state = seed.wrapping_add(7);
        let logits: Vec<f32> = (0..classes).map(|_| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        }).collect();
        let mut probs = vec![0.0f32; classes];
        softmax(1, classes, &logits, &mut probs);
        let mut grad = vec![0.0f32; classes];
        softmax_cross_entropy_backward(1, classes, &probs, &[label], &mut grad);
        prop_assert!(grad.iter().sum::<f32>().abs() < 1e-5);
    }

    /// col2im is the adjoint of im2col for random geometries.
    #[test]
    fn im2col_adjoint(
        channels in 1usize..3,
        hw in 3usize..8,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..200,
    ) {
        prop_assume!(kernel <= hw + 2 * pad);
        let geom = Conv2dGeometry::square(channels, hw, kernel, stride, pad);
        prop_assume!(geom.out_h().is_ok());
        let cols = geom.col_rows() * geom.col_cols().unwrap();
        let mut state = seed.wrapping_mul(97);
        let mut gen = || {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            ((state >> 16) as f32 / 65536.0) - 0.5
        };
        let x: Vec<f32> = (0..geom.in_len()).map(|_| gen()).collect();
        let c: Vec<f32> = (0..cols).map(|_| gen()).collect();

        let mut col = vec![0.0f32; cols];
        im2col(&geom, &x, &mut col);
        let lhs = ops::dot(&col, &c);

        let mut img = vec![0.0f32; geom.in_len()];
        col2im(&geom, &c, &mut img);
        let rhs = ops::dot(&x, &img);
        prop_assert!((lhs - rhs).abs() < 1e-2, "{lhs} vs {rhs}");
    }

    /// Tensor reshape round-trips and preserves data.
    #[test]
    fn reshape_roundtrip(data in pvec(small_f32(), 1..48)) {
        let n = data.len();
        let mut t = Tensor::from_vec(data.clone(), &[n]).unwrap();
        if n % 2 == 0 {
            t.reshape(&[2, n / 2]).unwrap();
            t.reshape(&[n]).unwrap();
        }
        prop_assert_eq!(t.data(), &data[..]);
    }
}
