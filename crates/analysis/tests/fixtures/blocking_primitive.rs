// Lint fixture: OS blocking primitives in cooperative simulation code.
// Every proc runs on a thread the virtual-time scheduler parks and wakes;
// blocking on an OS primitive instead stalls virtual time for the whole
// simulation and hides the wait from the schedule explorer. Coordination
// must go through SimChannel, ctx.sleep, or the scheduler's own waits.
use std::sync::mpsc;
use std::sync::{Barrier, Condvar};

pub fn block(rx: &mpsc::Receiver<()>, b: &Barrier) {
    let _ = rx.recv();
    b.wait();
    std::thread::park();
}

pub fn nap(d: std::time::Duration) {
    std::thread::park_timeout(d);
}

pub fn fanout() {
    let (_tx, _rx) = crossbeam::channel::bounded::<u32>(1);
}

// A Condvar mentioned in a comment, or in a string, is prose, not a wait:
pub const DOC: &str = "a Condvar wait stalls virtual time";
