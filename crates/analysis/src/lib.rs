//! Workspace invariant checker for the ShmCaffe reproduction.
//!
//! Two engines keep the simulation honest:
//!
//! 1. **Determinism lint** (this crate): a token-level scan of every
//!    workspace crate (see [`scanner`] for the lexer) rejecting constructs
//!    that break run-to-run reproducibility — hashed collections in
//!    sim/data-plane crates, ambient time and randomness, ad-hoc float
//!    reductions, OS blocking primitives outside the scheduler, and
//!    `unsafe` outside the two audited tensor hot paths. Suppressions live
//!    in `analysis.toml` and require a written justification.
//! 2. **Race detector** (`shmcaffe-simnet::race`, feature `race-detect`):
//!    a vector-clock happens-before checker over SMB/RDMA byte-range
//!    accesses, exercised by the integration tests.
//!
//! Run the lint with `cargo run -p shmcaffe-analysis`; it exits non-zero on
//! any unsuppressed violation. DESIGN.md § Enforced invariants documents
//! every rule and the happens-before edge set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod rules;
pub mod scanner;

pub use allowlist::{parse_allowlist, AllowEntry};
pub use rules::{scan_file, scan_workspace, Violation};

use std::fs;
use std::io;
use std::path::Path;

/// Outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Allowlist parse/validation errors (missing justifications, unknown
    /// rules or keys).
    pub allow_errors: Vec<String>,
    /// Allowlist entries that matched no violation (stale suppressions;
    /// reported as warnings, not failures).
    pub unused_allows: Vec<AllowEntry>,
    /// Allowlist entries that did suppress something.
    pub used_allows: Vec<AllowEntry>,
}

impl RunReport {
    /// Whether the workspace passes: no unsuppressed violations and a
    /// well-formed allowlist.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.allow_errors.is_empty()
    }
}

/// Scans the workspace rooted at `root` and applies `root/analysis.toml`.
///
/// # Errors
///
/// Propagates filesystem errors; allowlist problems are reported in the
/// [`RunReport`], not as errors.
pub fn run(root: &Path) -> io::Result<RunReport> {
    let mut report = RunReport::default();
    let entries = match fs::read_to_string(root.join("analysis.toml")) {
        Ok(text) => match parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(e) => {
                report.allow_errors.push(e);
                Vec::new()
            }
        },
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let violations = scan_workspace(root)?;
    let (remaining, used) = allowlist::apply(violations, &entries);
    report.violations = remaining;
    for (entry, used) in entries.into_iter().zip(used) {
        if used {
            report.used_allows.push(entry);
        } else {
            report.unused_allows.push(entry);
        }
    }
    Ok(report)
}
