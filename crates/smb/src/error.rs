use std::fmt;

use shmcaffe_rdma::RdmaError;
use shmcaffe_simnet::topology::NodeId;
use shmcaffe_simnet::SimDuration;

use crate::server::ShmKey;

/// Errors produced by SMB operations. Every variant names the segment key
/// and/or node involved, so a fault report can say *which* buffer on
/// *which* server failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmbError {
    /// The SHM key does not name a live segment.
    UnknownKey {
        /// The dead key.
        key: ShmKey,
        /// The server node the segment was expected on.
        node: NodeId,
    },
    /// A buffer name was created twice.
    DuplicateName {
        /// The colliding name.
        name: String,
        /// The server node holding the original.
        node: NodeId,
    },
    /// Source and destination of an accumulate differ in length.
    LengthMismatch {
        /// Source segment length (elements).
        src: usize,
        /// Destination segment length (elements).
        dst: usize,
        /// The destination segment's key.
        key: ShmKey,
    },
    /// The client buffer length does not match the caller's slice.
    SizeMismatch {
        /// The segment being accessed.
        key: ShmKey,
        /// Segment length (elements).
        expected: usize,
        /// Slice length provided by the caller.
        got: usize,
    },
    /// No memory server exists on this fabric.
    NoMemoryServer,
    /// The segment's owner lease expired and the server evicted it.
    LeaseExpired {
        /// The evicted segment.
        key: ShmKey,
        /// The owner rank whose heartbeat lapsed.
        owner: usize,
        /// The server node that evicted it.
        node: NodeId,
    },
    /// The operation kept failing until the retry deadline was exhausted.
    Timeout {
        /// The segment being accessed.
        key: ShmKey,
        /// The server node being reached.
        node: NodeId,
        /// Total virtual time spent across all attempts.
        waited: SimDuration,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A single attempt failed with a transient transport error (the retry
    /// layer surfaces this when it judges the error non-retriable).
    Unavailable {
        /// The segment being accessed.
        key: ShmKey,
        /// The server node being reached.
        node: NodeId,
        /// The transport failure.
        cause: RdmaError,
    },
    /// The mutation carried a stale fencing epoch: a newer primary has
    /// been promoted since this client last refreshed its epoch, so the
    /// write was rejected before touching segment state.
    FencedEpoch {
        /// The segment the rejected mutation targeted.
        key: ShmKey,
        /// The server node that rejected it.
        node: NodeId,
        /// The epoch the client believed was active.
        carried: u64,
        /// The epoch actually active on the pair.
        active: u64,
    },
    /// A CRC-guarded page failed verification: the server poisoned the
    /// page instead of serving its bytes. Transient — a replicated
    /// deployment repairs the page from the standby's copy and retries.
    Corrupted {
        /// The segment holding the bad page.
        key: ShmKey,
        /// The server node whose copy failed the check.
        node: NodeId,
        /// Index of the failing page in the segment's page grid.
        page: usize,
    },
    /// The end-to-end wire checksum over a transfer's payload did not
    /// match: the payload was damaged in flight. Nothing landed (writes
    /// are rejected server-side; reads discard the buffer), so a plain
    /// retry re-sends over the wire.
    CorruptedWire {
        /// The segment being transferred.
        key: ShmKey,
        /// The server node at the far end of the transfer.
        node: NodeId,
    },
    /// A poisoned page could not be repaired: the standby's copy is also
    /// bad, or the deployment has no standby at all. Permanent — the data
    /// is gone and no retry can bring it back.
    Unrepairable {
        /// The segment holding the lost page.
        key: ShmKey,
        /// The server node whose page is lost.
        node: NodeId,
        /// Index of the lost page in the segment's page grid.
        page: usize,
    },
    /// An underlying RDMA failure outside any retry context.
    Rdma(RdmaError),
}

impl fmt::Display for SmbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmbError::UnknownKey { key, node } => {
                write!(f, "unknown SHM key {key} on {node}")
            }
            SmbError::DuplicateName { name, node } => {
                write!(f, "buffer name already exists on {node}: {name}")
            }
            SmbError::LengthMismatch { src, dst, key } => {
                write!(f, "accumulate length mismatch into {key}: src {src} vs dst {dst}")
            }
            SmbError::SizeMismatch { key, expected, got } => {
                write!(f, "buffer {key} has {expected} elements but caller passed {got}")
            }
            SmbError::NoMemoryServer => write!(f, "fabric has no memory server endpoint"),
            SmbError::LeaseExpired { key, owner, node } => {
                write!(f, "lease on {key} (owner rank {owner}) expired; evicted by {node}")
            }
            SmbError::Timeout { key, node, waited, attempts } => {
                write!(f, "op on {key} at {node} timed out after {attempts} attempts ({waited})")
            }
            SmbError::Unavailable { key, node, cause } => {
                write!(f, "{node} unavailable for {key}: {cause}")
            }
            SmbError::FencedEpoch { key, node, carried, active } => {
                write!(
                    f,
                    "write to {key} at {node} fenced: carried epoch {carried}, active {active}"
                )
            }
            SmbError::Corrupted { key, node, page } => {
                write!(f, "page {page} of {key} on {node} failed CRC verification (poisoned)")
            }
            SmbError::CorruptedWire { key, node } => {
                write!(f, "wire checksum mismatch transferring {key} to/from {node}")
            }
            SmbError::Unrepairable { key, node, page } => {
                write!(f, "page {page} of {key} on {node} is unrepairable: no clean replica")
            }
            SmbError::Rdma(e) => write!(f, "rdma error: {e}"),
        }
    }
}

impl std::error::Error for SmbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmbError::Rdma(e) => Some(e),
            SmbError::Unavailable { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

impl From<RdmaError> for SmbError {
    fn from(e: RdmaError) -> Self {
        SmbError::Rdma(e)
    }
}

impl SmbError {
    /// Whether the retry layer should try the operation again: transport
    /// faults and timeouts are transient, protocol errors are not.
    pub fn is_transient(&self) -> bool {
        match self {
            SmbError::Timeout { .. }
            | SmbError::Unavailable { .. }
            | SmbError::FencedEpoch { .. }
            | SmbError::Corrupted { .. }
            | SmbError::CorruptedWire { .. } => true,
            SmbError::Rdma(e) => matches!(
                e,
                RdmaError::QpFault { .. }
                    | RdmaError::QpNotReady { .. }
                    | RdmaError::Timeout { .. }
            ),
            _ => false,
        }
    }

    /// Whether this error means the server endpoint itself has permanently
    /// crashed (as opposed to a transient link fault). Retrying against
    /// the same endpoint can never succeed; a replicated client fails over
    /// to the standby instead (see [`crate::SmbPair`]).
    pub fn is_server_crash(&self) -> bool {
        let cause = match self {
            SmbError::Unavailable { cause, .. } => cause,
            SmbError::Rdma(e) => e,
            _ => return false,
        };
        matches!(
            cause,
            RdmaError::QpFault {
                fault: shmcaffe_simnet::fault::FaultError::NodeCrashed { .. },
                ..
            }
        )
    }

    /// Whether this error is a fencing rejection: the client's epoch is
    /// stale and it must refresh against the promoted primary before the
    /// mutation can be retried.
    pub fn is_fenced(&self) -> bool {
        matches!(self, SmbError::FencedEpoch { .. })
    }

    /// Whether this error reports detected data corruption — a poisoned
    /// page, a wire checksum mismatch, or an unrepairable page. The
    /// SEASGD lane reader uses this to degrade (treat the tile as stale)
    /// rather than mix damaged bytes into a delta.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            SmbError::Corrupted { .. }
                | SmbError::CorruptedWire { .. }
                | SmbError::Unrepairable { .. }
        )
    }

    /// Whether the underlying transport cause is a seeded network
    /// partition ([`shmcaffe_simnet::fault::FaultError::Partitioned`]).
    /// The retry layer combines this with the pair's authority state:
    /// a partition alone is ridden out, but a partition *plus* an expired
    /// primary lease triggers failover to the standby.
    pub fn is_partitioned(&self) -> bool {
        let cause = match self {
            SmbError::Unavailable { cause, .. } => cause,
            SmbError::Rdma(e) => e,
            _ => return false,
        };
        matches!(
            cause,
            RdmaError::QpFault {
                fault: shmcaffe_simnet::fault::FaultError::Partitioned { .. },
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SmbError::Rdma(RdmaError::UnknownRegion {
            rkey: shmcaffe_rdma::RemoteKey(3),
            node: NodeId(1),
        });
        assert!(e.source().is_some());
        assert!(!e.to_string().is_empty());
        assert!(SmbError::NoMemoryServer.source().is_none());
    }

    #[test]
    fn unavailable_chains_to_the_rdma_cause() {
        use std::error::Error;
        let cause = RdmaError::BadNode(NodeId(9));
        let e = SmbError::Unavailable { key: ShmKey(2), node: NodeId(4), cause };
        let src = e.source().expect("source chained");
        assert!(src.to_string().contains("node9"));
        assert!(e.to_string().contains("shm:2"));
    }

    #[test]
    fn server_crash_classification() {
        use shmcaffe_simnet::fault::FaultError;
        use shmcaffe_simnet::SimTime;
        let crash = FaultError::NodeCrashed { node: NodeId(4), at: SimTime::ZERO };
        let e = SmbError::Unavailable {
            key: ShmKey(1),
            node: NodeId(4),
            cause: RdmaError::QpFault { local: NodeId(0), remote: NodeId(4), fault: crash },
        };
        assert!(e.is_server_crash());
        assert!(e.is_transient(), "crash is still retried — the retry loop fails over");
        let link = FaultError::LinkDown { node: NodeId(4), at: SimTime::ZERO };
        let e2 = SmbError::Unavailable {
            key: ShmKey(1),
            node: NodeId(4),
            cause: RdmaError::QpFault { local: NodeId(0), remote: NodeId(4), fault: link },
        };
        assert!(!e2.is_server_crash());
        assert!(!SmbError::NoMemoryServer.is_server_crash());
    }

    #[test]
    fn fenced_epoch_classification() {
        let e = SmbError::FencedEpoch { key: ShmKey(3), node: NodeId(4), carried: 1, active: 2 };
        assert!(e.is_fenced());
        assert!(e.is_transient(), "fenced writes retry after refreshing the epoch");
        assert!(!e.is_server_crash());
        assert!(e.to_string().contains("carried epoch 1"));
        assert!(!SmbError::NoMemoryServer.is_fenced());
    }

    #[test]
    fn transience_classification() {
        assert!(SmbError::Timeout {
            key: ShmKey(1),
            node: NodeId(0),
            waited: SimDuration::from_millis(1),
            attempts: 3,
        }
        .is_transient());
        assert!(!SmbError::NoMemoryServer.is_transient());
        assert!(!SmbError::UnknownKey { key: ShmKey(1), node: NodeId(0) }.is_transient());
    }

    #[test]
    fn corruption_classification() {
        let poisoned = SmbError::Corrupted { key: ShmKey(1), node: NodeId(4), page: 3 };
        assert!(poisoned.is_corruption());
        assert!(poisoned.is_transient(), "poisoned pages retry through repair");
        assert!(poisoned.to_string().contains("page 3"));

        let wire = SmbError::CorruptedWire { key: ShmKey(1), node: NodeId(4) };
        assert!(wire.is_corruption());
        assert!(wire.is_transient(), "wire damage retries with a fresh transfer");

        let lost = SmbError::Unrepairable { key: ShmKey(1), node: NodeId(4), page: 3 };
        assert!(lost.is_corruption());
        assert!(!lost.is_transient(), "unrepairable pages are permanent");
        assert!(lost.to_string().contains("unrepairable"));

        assert!(!SmbError::NoMemoryServer.is_corruption());
    }
}
