//! Local Response Normalisation (across channels), as used by AlexNet and
//! GoogLeNet/Inception-v1 — the paper's headline model.
//!
//! Both directions are batch-parallel: LRN windows never cross images, so
//! each image runs as an independent task on the tensor worker pool.

use shmcaffe_tensor::parallel::{self, Task};
use shmcaffe_tensor::Tensor;

use crate::{DnnError, Layer, Phase};

/// Across-channel LRN: `y = x / (k + α/n · Σ x²)^β` over a window of `n`
/// adjacent channels (Caffe's `LRNLayer` with default
/// `ACROSS_CHANNELS`).
#[derive(Debug)]
pub struct Lrn {
    name: String,
    size: usize,
    alpha: f32,
    beta: f32,
    k: f32,
    cache: Option<LrnCache>,
}

#[derive(Debug)]
struct LrnCache {
    input: Tensor,
    /// The `(k + α/n Σ x²)` term per element.
    scale: Vec<f32>,
}

impl Lrn {
    /// Creates an LRN layer with Caffe's defaults (`size` 5, α 1e-4, β 0.75,
    /// k 1.0) unless overridden.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or even (the window must centre on a
    /// channel).
    pub fn new(name: &str, size: usize, alpha: f32, beta: f32, k: f32) -> Self {
        assert!(size % 2 == 1 && size > 0, "LRN window must be odd and positive");
        Lrn { name: name.to_string(), size, alpha, beta, k, cache: None }
    }

    /// Caffe's default parameters.
    pub fn with_defaults(name: &str) -> Self {
        Self::new(name, 5, 1e-4, 0.75, 1.0)
    }

    fn dims_of(&self, t: &Tensor) -> Result<(usize, usize, usize), DnnError> {
        let dims = t.dims();
        if dims.len() != 4 {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!("expected (N, C, H, W), got {dims:?}"),
            });
        }
        Ok((dims[0], dims[1], dims[2] * dims[3]))
    }
}

impl Layer for Lrn {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let (batch, channels, spatial) = self.dims_of(input)?;
        let x = input.data();
        let mut out = Tensor::zeros(input.dims());
        let mut scale = vec![0.0f32; x.len()];
        let half = self.size / 2;
        let alpha_n = self.alpha / self.size as f32;

        let img_len = channels * spatial;
        let k = self.k;
        let beta = self.beta;
        let forward_one = |x_image: &[f32], out_image: &mut [f32], scale_image: &mut [f32]| {
            for c in 0..channels {
                let lo = c.saturating_sub(half);
                let hi = (c + half + 1).min(channels);
                for s in 0..spatial {
                    let mut acc = 0.0f32;
                    for cc in lo..hi {
                        let v = x_image[cc * spatial + s];
                        acc += v * v;
                    }
                    let idx = c * spatial + s;
                    let sc = k + alpha_n * acc;
                    scale_image[idx] = sc;
                    out_image[idx] = x_image[idx] * sc.powf(-beta);
                }
            }
        };

        if batch <= 1 || img_len == 0 || parallel::current_threads() <= 1 {
            for ((x_image, out_image), scale_image) in x
                .chunks(img_len.max(1))
                .zip(out.data_mut().chunks_mut(img_len.max(1)))
                .zip(scale.chunks_mut(img_len.max(1)))
            {
                forward_one(x_image, out_image, scale_image);
            }
        } else {
            let forward_one = &forward_one;
            let tasks: Vec<Task<'_>> = x
                .chunks(img_len)
                .zip(out.data_mut().chunks_mut(img_len))
                .zip(scale.chunks_mut(img_len))
                .map(|((x_image, out_image), scale_image)| -> Task<'_> {
                    Box::new(move || forward_one(x_image, out_image, scale_image))
                })
                .collect();
            parallel::run_tasks(tasks);
        }
        self.cache = Some(LrnCache { input: input.clone(), scale });
        Ok(out)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let cache = self.cache.as_ref().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward called before forward".to_string(),
        })?;
        if d_output.len() != cache.input.len() {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output length mismatch".to_string(),
            });
        }
        let (batch, channels, spatial) = self.dims_of(&cache.input)?;
        let x = cache.input.data();
        let dy = d_output.data();
        let scale = &cache.scale;
        let half = self.size / 2;
        let alpha_n = self.alpha / self.size as f32;
        let mut d_input = Tensor::zeros(cache.input.dims());

        // dx_i = dy_i * s_i^{-β} − 2αβ/n · x_i · Σ_{j: i∈win(j)} dy_j x_j s_j^{-β-1}
        let img_len = channels * spatial;
        let beta = self.beta;
        let backward_one = |n: usize, d_image: &mut [f32]| {
            let base = n * img_len;
            for c in 0..channels {
                let lo = c.saturating_sub(half);
                let hi = (c + half + 1).min(channels);
                for s in 0..spatial {
                    let idx = base + c * spatial + s;
                    let mut grad = dy[idx] * scale[idx].powf(-beta);
                    // Channels j whose window contains c.
                    for j in lo..hi {
                        let jdx = base + j * spatial + s;
                        grad -= 2.0
                            * alpha_n
                            * beta
                            * x[idx]
                            * dy[jdx]
                            * x[jdx]
                            * scale[jdx].powf(-beta - 1.0);
                    }
                    d_image[c * spatial + s] = grad;
                }
            }
        };

        if batch <= 1 || img_len == 0 || parallel::current_threads() <= 1 {
            for (n, d_image) in d_input.data_mut().chunks_mut(img_len.max(1)).enumerate() {
                backward_one(n, d_image);
            }
        } else {
            let backward_one = &backward_one;
            let tasks: Vec<Task<'_>> = d_input
                .data_mut()
                .chunks_mut(img_len)
                .enumerate()
                .map(|(n, d_image)| -> Task<'_> { Box::new(move || backward_one(n, d_image)) })
                .collect();
            parallel::run_tasks(tasks);
        }
        Ok(d_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_normalizes_against_neighbours() {
        let mut lrn = Lrn::new("lrn", 3, 1.0, 1.0, 1.0);
        // 1 image, 3 channels, 1x1 spatial.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3, 1, 1]).unwrap();
        let y = lrn.forward(&x, Phase::Train).unwrap();
        // Channel 0: window {0,1}: scale = 1 + (1/3)(1+4) = 8/3.
        assert!((y.data()[0] - 1.0 / (8.0 / 3.0)).abs() < 1e-5);
        // Channel 1: window {0,1,2}: scale = 1 + (1/3)(1+4+9) = 17/3.
        assert!((y.data()[1] - 2.0 / (17.0 / 3.0)).abs() < 1e-5);
    }

    #[test]
    fn identity_when_alpha_zero() {
        let mut lrn = Lrn::new("lrn", 5, 0.0, 0.75, 1.0);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 2, 2]).unwrap();
        let y = lrn.forward(&x, Phase::Test).unwrap();
        for (a, b) in y.data().iter().zip(x.data().iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut lrn = Lrn::new("lrn", 3, 0.5, 0.75, 2.0);
        let x =
            Tensor::from_vec((0..24).map(|i| ((i as f32) * 0.61).sin()).collect(), &[2, 3, 2, 2])
                .unwrap();
        let d_out = Tensor::from_vec(
            (0..24).map(|i| ((i % 5) as f32 - 2.0) * 0.3).collect(),
            &[2, 3, 2, 2],
        )
        .unwrap();
        lrn.forward(&x, Phase::Train).unwrap();
        let d_in = lrn.backward(&d_out).unwrap();

        let loss = |x: &Tensor| -> f32 {
            let mut l2 = Lrn::new("lrn", 3, 0.5, 0.75, 2.0);
            let y = l2.forward(x, Phase::Train).unwrap();
            y.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-3;
        let mut xp = x.clone();
        for i in 0..24 {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = loss(&xp);
            xp.data_mut()[i] = orig - eps;
            let lm = loss(&xp);
            xp.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (d_in.data()[i] - numeric).abs() < 2e-3,
                "i={i}: {} vs {numeric}",
                d_in.data()[i]
            );
        }
    }

    #[test]
    fn rejects_non_4d_input() {
        let mut lrn = Lrn::with_defaults("lrn");
        assert!(lrn.forward(&Tensor::zeros(&[2, 3]), Phase::Train).is_err());
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_window_rejected() {
        Lrn::new("lrn", 4, 1e-4, 0.75, 1.0);
    }
}
