//! ShmCaffe: the distributed deep-learning platform of the paper, plus the
//! three baseline platforms it is evaluated against.
//!
//! The platform layer composes every substrate in this workspace:
//!
//! * [`seasgd`] — Shared-memory Elastic Averaging SGD (paper §III-C/G,
//!   eqs. 2–7): each worker mixes its local weights with the global buffer
//!   on the SMB server and overlaps the write/accumulate with computation
//!   through a dedicated update thread (Fig. 6).
//! * [`hybrid`] — Hybrid SGD (§III-D, Fig. 4): synchronous NCCL allreduce
//!   among the GPUs of one node, asynchronous SEASGD between node groups.
//! * [`platforms`] — runnable platforms returning a [`report::TrainingReport`]:
//!   [`platforms::ShmCaffeA`] (pure asynchronous), [`platforms::ShmCaffeH`]
//!   (hybrid), and the baselines [`platforms::CaffeSsgd`] (BVLC Caffe
//!   multi-GPU), [`platforms::CaffeMpi`] (Inspur-style star parameter
//!   exchange) and [`platforms::MpiCaffe`] (MPI_Allreduce SSGD).
//! * [`termination`] — the three termination-alignment criteria of §III-E.
//! * [`trainer`] — the [`trainer::Trainer`] abstraction: real CPU training
//!   ([`trainer::RealTrainer`]) for convergence experiments, calibrated
//!   compute models ([`trainer::ModeledTrainer`]) for timing experiments.
//!
//! # Example: four asynchronous workers training a real model
//!
//! ```rust
//! use shmcaffe::config::ShmCaffeConfig;
//! use shmcaffe::platforms::ShmCaffeA;
//! use shmcaffe::trainer::RealTrainerFactory;
//! use shmcaffe_dnn::data::SyntheticBlobs;
//! use shmcaffe_dnn::SolverConfig;
//! use shmcaffe_models::proxies;
//! use shmcaffe_simnet::topology::ClusterSpec;
//! use std::sync::Arc;
//!
//! let dataset = Arc::new(SyntheticBlobs::new(3, 4, 240, 0.3, 7));
//! let factory = RealTrainerFactory::builder()
//!     .dataset(dataset)
//!     .net_builder(|seed| proxies::mlp(4, 16, 3, seed))
//!     .solver(SolverConfig { base_lr: 0.05, ..Default::default() })
//!     .batch(20)
//!     .build();
//! let cfg = ShmCaffeConfig { max_iters: 30, ..Default::default() };
//! let report = ShmCaffeA::new(ClusterSpec::paper_testbed(1), 4, cfg)
//!     .run(factory)
//!     .unwrap();
//! assert_eq!(report.workers.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod error;
pub mod hybrid;
pub mod platforms;
pub mod report;
pub mod seasgd;
pub mod termination;
pub mod trainer;

pub use config::ShmCaffeConfig;
pub use error::PlatformError;
pub use report::TrainingReport;
