//! ShmCaffe-A: the pure asynchronous platform (SEASGD on every worker).

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_mpi::{MpiData, MpiWorld};
use shmcaffe_rdma::RdmaFabric;
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
use shmcaffe_simnet::{SimDuration, Simulation};
use shmcaffe_smb::progress::ProgressBoard;
use shmcaffe_smb::{ShmKey, SmbClient, SmbPair, SmbServer, SmbServerConfig};

use crate::config::ShmCaffeConfig;
use crate::report::TrainingReport;
use crate::seasgd::{
    run_worker, CheckpointPlan, SeasgdBuffers, SeasgdHarness, CHECKPOINT_META_LEN,
};
use crate::trainer::{Trainer, TrainerFactory};
use crate::PlatformError;

use super::run_sim;

/// The asynchronous ShmCaffe platform (paper "ShmCaffe-A").
///
/// Rank 0 is the master worker: it creates the global-weight buffer and the
/// progress board on the SMB server, seeds the global weights with its own
/// initial parameters, and broadcasts the SHM keys over MPI (paper §III-A,
/// Fig. 2). Every worker then runs SEASGD (Fig. 6).
#[derive(Debug, Clone)]
pub struct ShmCaffeA {
    spec: ClusterSpec,
    workers: usize,
    cfg: ShmCaffeConfig,
    fault_plan: Option<FaultPlan>,
    server_config: SmbServerConfig,
    standby_replication: Option<SimDuration>,
}

impl ShmCaffeA {
    /// Configures the platform.
    pub fn new(spec: ClusterSpec, workers: usize, cfg: ShmCaffeConfig) -> Self {
        ShmCaffeA {
            spec,
            workers,
            cfg,
            fault_plan: None,
            server_config: SmbServerConfig::default(),
            standby_replication: None,
        }
    }

    /// Deploys a standby memory server mirroring the primary's segments,
    /// leases, and tombstones every `interval` of virtual time. Requires
    /// `ClusterSpec::memory_servers >= 2`. Clients are bound to the
    /// replicated pair: when a retrying operation observes the primary's
    /// crash (seeded via [`FaultPlan::crash_memory_server`]), the standby
    /// is promoted and the whole fleet fails over to it.
    pub fn with_standby(mut self, interval: SimDuration) -> Self {
        self.standby_replication = Some(interval);
        self
    }

    /// Injects a deterministic fault plan into the fabric: link outages and
    /// degradations hit the SMB transport, stalls freeze nodes, and worker
    /// crashes kill SEASGD ranks mid-run. In fault mode the platform
    /// replaces its final MPI barrier with progress-board polling so that
    /// survivors complete even when a peer never arrives.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the SMB server configuration (e.g. to shorten the lease
    /// timeout so crashed workers are evicted faster in tests).
    pub fn with_server_config(mut self, config: SmbServerConfig) -> Self {
        self.server_config = config;
        self
    }

    /// Runs distributed training and returns the fleet report.
    ///
    /// # Errors
    ///
    /// Returns configuration errors or any propagated worker failure.
    pub fn run<F: TrainerFactory>(&self, factory: F) -> Result<TrainingReport, PlatformError> {
        self.cfg.validate().map_err(PlatformError::BadConfig)?;
        if self.workers == 0 || self.workers > self.spec.total_gpus() {
            return Err(PlatformError::BadConfig(format!(
                "{} workers do not fit {} GPU slots",
                self.workers,
                self.spec.total_gpus()
            )));
        }
        if self.spec.memory_servers == 0 {
            return Err(PlatformError::BadConfig(
                "ShmCaffe requires a memory server on the fabric".to_string(),
            ));
        }

        if self.standby_replication.is_some() && self.spec.memory_servers < 2 {
            return Err(PlatformError::BadConfig(
                "standby replication requires at least two memory servers".to_string(),
            ));
        }

        let fabric = match &self.fault_plan {
            Some(plan) => Fabric::with_faults(self.spec, plan.clone()),
            None => Fabric::new(self.spec),
        };
        let fault_mode = self.fault_plan.is_some();
        let crashed_ranks: Arc<Vec<usize>> =
            Arc::new(self.fault_plan.as_ref().map(FaultPlan::crashed_ranks).unwrap_or_default());
        let rdma = RdmaFabric::new(fabric.clone());
        let pair = match self.standby_replication {
            Some(_) => Some(SmbPair::new(rdma.clone(), self.server_config)?),
            None => None,
        };
        let server = match &pair {
            Some(p) => p.primary().clone(),
            None => SmbServer::with_config(rdma, self.server_config)?,
        };
        let mpi = MpiWorld::new(fabric.clone(), self.workers);
        let factory = Arc::new(factory);
        let cfg = self.cfg;
        // Crashed ranks rejoin from the checkpoint instead of staying dead;
        // the collector then waits for them and leaves their lease
        // reclamation to their own rejoin acknowledgements.
        let rejoin_mode = cfg.checkpoint_every > 0 && cfg.rejoin_delay.is_some();
        let n_workers = self.workers;
        let report = Arc::new(Mutex::new(TrainingReport::new("ShmCaffe-A", n_workers)));

        let mut sim = Simulation::new();
        if let (Some(p), Some(interval)) = (&pair, self.standby_replication) {
            let p = p.clone();
            sim.spawn("smb_replicator", move |ctx| p.run_replicator(&ctx, interval));
        }
        // Background integrity scrubbers: when the server runs a CRC page
        // grid with a scrub cadence, each pair member (or the lone server)
        // sweeps its own DRAM so decayed pages are poisoned and repaired
        // long before a client read would trip over them.
        if self.server_config.page_elems > 0
            && self.server_config.scrub_interval > SimDuration::ZERO
        {
            match &pair {
                Some(p) => {
                    let s = p.primary().clone();
                    sim.spawn("smb_scrubber_primary", move |ctx| s.run_scrubber(&ctx));
                    let s = p.standby().clone();
                    sim.spawn("smb_scrubber_standby", move |ctx| s.run_scrubber(&ctx));
                }
                None => {
                    let s = server.clone();
                    sim.spawn("smb_scrubber", move |ctx| s.run_scrubber(&ctx));
                }
            }
        }
        for rank in 0..n_workers {
            let server = server.clone();
            let pair = pair.clone();
            let mut comm = mpi.comm(rank);
            let node = mpi.node_of(rank);
            let factory = Arc::clone(&factory);
            let report = Arc::clone(&report);
            let crashed_ranks = Arc::clone(&crashed_ranks);
            let crash_at = fabric.fault_injector().and_then(|i| i.crash_time(rank));
            sim.spawn(&format!("shmcaffe_a_w{rank}"), move |ctx| {
                let mut trainer = factory.make(rank, n_workers);
                let client = match &pair {
                    Some(p) => SmbClient::with_failover(p.clone(), node),
                    None => SmbClient::new(server, node),
                };
                let param_len = trainer.param_len();
                let wire = trainer.wire_bytes();

                // Fig. 2 handshake: master creates, broadcasts keys
                // (ShmKey(0) = "no such segment" — real keys start at 1).
                let (wg_key, board_key, ckpt_keys) = if rank == 0 {
                    let wg_key = client
                        .create(&ctx, "W_g", param_len, Some(wire))
                        .expect("fresh server has no duplicate segments");
                    let (board, board_key) =
                        ProgressBoard::create(&client, &ctx, "control_info", n_workers)
                            .expect("fresh server has no duplicate segments");
                    // Checkpoint segments for the center variable. Unleased:
                    // they must survive any worker's crash.
                    let ckpt_keys = (cfg.checkpoint_every > 0).then(|| {
                        let w = client
                            .create(&ctx, "ckpt_W", param_len, Some(wire))
                            .expect("fresh server has no duplicate segments");
                        let meta = client
                            .create(&ctx, "ckpt_meta", CHECKPOINT_META_LEN, None)
                            .expect("fresh server has no duplicate segments");
                        (w, meta)
                    });
                    // Seed the global weights with the master's parameters.
                    let wg = client.alloc(&ctx, wg_key).expect("key just created");
                    let mut w0 = vec![0.0f32; param_len];
                    trainer.read_weights(&mut w0);
                    client.write(&ctx, &wg, &w0).expect("sizes match");
                    let _ = board;
                    let (ck_w, ck_m) = ckpt_keys.map_or((0, 0), |(w, m)| (w.0, m.0));
                    comm.broadcast(
                        &ctx,
                        0,
                        Some(MpiData::U64s(vec![wg_key.0, board_key.0, ck_w, ck_m])),
                    );
                    (wg_key, board_key, ckpt_keys)
                } else {
                    let keys = comm.broadcast(&ctx, 0, None).into_u64s();
                    let ckpt_keys = (keys[2] != 0).then(|| (ShmKey(keys[2]), ShmKey(keys[3])));
                    (ShmKey(keys[0]), ShmKey(keys[1]), ckpt_keys)
                };

                let wg = client.alloc(&ctx, wg_key).expect("master created the segment");
                // The private increment buffer is leased to this rank: if
                // the rank crashes and stops heartbeating, the server's
                // eviction reclaims it.
                let dw_key = client
                    .create_owned(&ctx, &format!("dW_{rank}"), param_len, Some(wire), rank)
                    .expect("per-rank names are unique");
                let dw = client.alloc(&ctx, dw_key).expect("key just created");
                let board = ProgressBoard::attach(&client, &ctx, board_key, n_workers)
                    .expect("board sized for n_workers");
                let checkpoint = ckpt_keys.map(|(w_key, m_key)| CheckpointPlan {
                    weights: client.alloc(&ctx, w_key).expect("master created the segment"),
                    meta: client.alloc(&ctx, m_key).expect("master created the segment"),
                });

                // Slaves adopt the master's initial weights.
                if rank != 0 {
                    let mut w0 = vec![0.0f32; param_len];
                    client.read(&ctx, &wg, &mut w0).expect("sizes match");
                    trainer.write_weights(&w0);
                }
                comm.barrier(&ctx);

                let harness = SeasgdHarness {
                    client: client.clone(),
                    buffers: SeasgdBuffers { wg, dw },
                    board: board.clone(),
                    cfg,
                    rank,
                    target_iters: cfg.max_iters as u64,
                    crash_at,
                    checkpoint,
                };
                let outcome = run_worker(&ctx, harness, &mut trainer)
                    .expect("smb operations on live segments succeed");

                // Collect the final averaged model after all workers are
                // done. The SMB read happens *before* taking the report
                // mutex: holding a real lock across a virtual-time block
                // would deadlock the cooperative scheduler.
                let final_w = if fault_mode {
                    // No final MPI barrier: a crashed peer would never
                    // arrive. The first surviving rank instead waits on the
                    // progress board, reaps leases of dead workers, and
                    // reads the final model.
                    let collector = (0..n_workers).find(|r| !crashed_ranks.contains(r));
                    (!outcome.report.crashed && collector == Some(rank)).then(|| {
                        loop {
                            let snap =
                                board.snapshot(&client, &ctx).expect("board outlives workers");
                            // In rejoin mode every rank eventually reaches
                            // the board again (a rejoiner finishes its
                            // second incarnation; an aborted rejoin
                            // announces itself); otherwise only survivors.
                            let awaited_done = (0..n_workers)
                                .filter(|r| rejoin_mode || !crashed_ranks.contains(r))
                                .all(|r| snap.is_done(r));
                            if awaited_done {
                                break;
                            }
                            ctx.sleep(SimDuration::from_millis(10));
                        }
                        // Evict the crashed ranks' leased buffers before the
                        // final read; their heartbeats stopped at crash time,
                        // so waiting out the lease timeout is enough. A
                        // rejoining rank reclaims (frees + acks) its own
                        // stale state and holds a live lease again, so its
                        // eviction is skipped.
                        let evict_expected = if rejoin_mode { 0 } else { crashed_ranks.len() };
                        let mut evicted = 0usize;
                        while evicted < evict_expected {
                            evicted += client.server().evict_stale(&ctx).len();
                            if evicted < evict_expected {
                                ctx.sleep(SimDuration::from_millis(50));
                            }
                        }
                        let mut w = vec![0.0f32; param_len];
                        client.read(&ctx, &wg, &mut w).expect("sizes match");
                        w
                    })
                } else {
                    comm.barrier(&ctx);
                    (rank == 0).then(|| {
                        let mut w = vec![0.0f32; param_len];
                        client.read(&ctx, &wg, &mut w).expect("sizes match");
                        w
                    })
                };
                // The run is over once the final model is read: let the
                // replicator and scrubber loops exit at their next wakeup
                // so the simulation can terminate.
                if final_w.is_some() {
                    match &pair {
                        Some(p) => {
                            p.stop_replicator();
                            p.primary().stop_scrubber();
                            p.standby().stop_scrubber();
                        }
                        None => client.server().stop_scrubber(),
                    }
                }
                let mut report = report.lock();
                report.workers[rank] = outcome.report;
                if rank == 0 {
                    report.evals = outcome.evals;
                }
                if final_w.is_some() {
                    report.final_weights = final_w;
                }
            });
        }

        let wall = run_sim(sim)?;
        let mut final_report =
            Arc::try_unwrap(report).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        final_report.wall = wall;
        // Server-side partition-tolerance counters: how many stale-epoch
        // writes the pair fenced off, and what the demoted primary
        // discarded/resynced when the partition healed.
        if let Some(p) = &pair {
            final_report.fenced_rejections = p.fenced_rejections();
            let (discarded, resynced) = p.reconcile_counts();
            final_report.reconcile_discarded = discarded;
            final_report.reconcile_resynced = resynced;
        }
        Ok(final_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModeledTrainerFactory;
    use shmcaffe_models::WorkloadModel;
    use shmcaffe_simnet::jitter::JitterModel;
    use shmcaffe_simnet::SimDuration;

    fn quick_cfg(iters: usize) -> ShmCaffeConfig {
        ShmCaffeConfig {
            max_iters: iters,
            progress_every: 5,
            jitter: JitterModel::NONE,
            ..Default::default()
        }
    }

    fn quick_factory() -> ModeledTrainerFactory {
        ModeledTrainerFactory::new(
            WorkloadModel::custom("t", 8_000_000, SimDuration::from_millis(20)),
            JitterModel::NONE,
            7,
        )
    }

    #[test]
    fn runs_sixteen_workers_end_to_end() {
        let report = ShmCaffeA::new(ClusterSpec::paper_testbed(4), 16, quick_cfg(10))
            .run(quick_factory())
            .unwrap();
        assert_eq!(report.workers.len(), 16);
        for w in &report.workers {
            assert_eq!(w.iters, 10);
        }
        assert!(report.wall.as_millis_f64() > 200.0);
        assert!(report.final_weights.is_some());
    }

    #[test]
    fn rejects_bad_configs() {
        let spec = ClusterSpec::paper_testbed(1);
        assert!(matches!(
            ShmCaffeA::new(spec, 0, quick_cfg(5)).run(quick_factory()),
            Err(PlatformError::BadConfig(_))
        ));
        assert!(matches!(
            ShmCaffeA::new(spec, 99, quick_cfg(5)).run(quick_factory()),
            Err(PlatformError::BadConfig(_))
        ));
        let no_mem = ClusterSpec { memory_servers: 0, ..spec };
        assert!(matches!(
            ShmCaffeA::new(no_mem, 2, quick_cfg(5)).run(quick_factory()),
            Err(PlatformError::BadConfig(_))
        ));
        let bad_cfg = ShmCaffeConfig { update_interval: 0, ..quick_cfg(5) };
        assert!(matches!(
            ShmCaffeA::new(spec, 2, bad_cfg).run(quick_factory()),
            Err(PlatformError::BadConfig(_))
        ));
    }

    #[test]
    fn report_is_deterministic() {
        let run = || {
            ShmCaffeA::new(ClusterSpec::paper_testbed(2), 8, quick_cfg(8))
                .run(quick_factory())
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.wall, b.wall);
        for (x, y) in a.workers.iter().zip(b.workers.iter()) {
            assert_eq!(x.comm_ms, y.comm_ms);
            assert_eq!(x.comp_ms, y.comp_ms);
        }
    }
}
