//! In-process MPI-like message passing over the simulated fabric.
//!
//! ShmCaffe "exchanges initialization messages between the distributed
//! processes using MPI" (§III-A) — rank 0 is the master worker that creates
//! the SMB buffers and broadcasts the SHM key. The Caffe-MPI and MPICaffe
//! baselines additionally exchange gradients through MPI point-to-point and
//! `MPI_Allreduce` operations. This crate provides that substrate:
//!
//! * [`MpiWorld`] — a communicator of `n` ranks mapped onto fabric nodes,
//! * [`Comm`] — a per-rank handle with `send`/`recv` (selective by source
//!   and tag, like `MPI_Recv`),
//! * collectives: [`Comm::barrier`], [`Comm::broadcast`], [`Comm::reduce`],
//!   [`Comm::gather`] and a ring [`Comm::allreduce`] (reduce-scatter +
//!   allgather, the algorithm MVAPICH uses for large messages),
//! * `*_wire` variants that model large logical payloads with small
//!   physical vectors, consistent with the rest of the stack.
//!
//! All transfers are charged to the fabric's HCA/PCIe resources, so MPI
//! traffic contends with SMB traffic exactly as on the paper's testbed.
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_simnet::{Simulation, topology::{ClusterSpec, Fabric}};
//! use shmcaffe_mpi::{MpiWorld, MpiData};
//!
//! let fabric = Fabric::new(ClusterSpec::paper_testbed(1));
//! let world = MpiWorld::new(fabric, 2);
//! let mut sim = Simulation::new();
//! for rank in 0..2 {
//!     let mut comm = world.comm(rank);
//!     sim.spawn(&format!("rank{rank}"), move |ctx| {
//!         let reduced = comm.allreduce(&ctx, vec![rank as f32 + 1.0]);
//!         assert_eq!(reduced, vec![3.0]); // 1 + 2
//!     });
//! }
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collective;
mod world;

pub use world::{Comm, MpiData, MpiError, MpiWorld, Tag};
