//! The Inception module (GoogLeNet/Inception-v1's building block), the
//! architecture of the paper's headline model.
//!
//! Four parallel branches over the same input — 1×1 conv, 1×1→3×3 conv,
//! 1×1→5×5 conv, and 3×3 max-pool→1×1 conv — concatenated along the
//! channel axis. The sequential [`crate::Net`] cannot express branching,
//! so the whole module is one composite [`Layer`] that routes data through
//! its internal sub-layers and splits gradients back to them.

use shmcaffe_tensor::conv::Conv2dGeometry;
use shmcaffe_tensor::init::Filler;
use shmcaffe_tensor::pool::PoolKind;
use shmcaffe_tensor::Tensor;

use super::{Conv2d, Pool2d, Relu};
use crate::{DnnError, Layer, Phase};

/// Output channels of each branch of an [`Inception`] module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionSpec {
    /// 1×1 branch output channels.
    pub c1: usize,
    /// 3×3 branch reduction (1×1) channels.
    pub c3_reduce: usize,
    /// 3×3 branch output channels.
    pub c3: usize,
    /// 5×5 branch reduction (1×1) channels.
    pub c5_reduce: usize,
    /// 5×5 branch output channels.
    pub c5: usize,
    /// Pool-projection branch output channels.
    pub pool_proj: usize,
}

impl InceptionSpec {
    /// Total output channels after concatenation.
    pub fn out_channels(&self) -> usize {
        self.c1 + self.c3 + self.c5 + self.pool_proj
    }
}

/// One branch: a chain of layers applied in sequence.
struct Branch {
    layers: Vec<Box<dyn Layer>>,
    out_channels: usize,
}

impl Branch {
    fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor, DnnError> {
        let mut act = input.clone();
        for layer in &mut self.layers {
            act = layer.forward(&act, phase)?;
        }
        Ok(act)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let mut grad = d_output.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad)?;
        }
        Ok(grad)
    }
}

/// An Inception-v1 module as a composite layer.
///
/// Input `(N, C, H, W)` → output `(N, spec.out_channels(), H, W)`.
///
/// # Example
///
/// ```rust
/// use shmcaffe_dnn::layers::{Inception, InceptionSpec};
/// use shmcaffe_dnn::{Layer, Phase};
/// use shmcaffe_tensor::Tensor;
///
/// # fn main() -> Result<(), shmcaffe_dnn::DnnError> {
/// let spec = InceptionSpec { c1: 4, c3_reduce: 2, c3: 6, c5_reduce: 2, c5: 2, pool_proj: 4 };
/// let mut module = Inception::new("incept_3a", 8, 8, spec, 1)?;
/// let x = Tensor::zeros(&[2, 8, 8, 8]);
/// let y = module.forward(&x, Phase::Train)?;
/// assert_eq!(y.dims(), &[2, 16, 8, 8]);
/// # Ok(())
/// # }
/// ```
pub struct Inception {
    name: String,
    branches: Vec<Branch>,
    hw: usize,
    in_channels: usize,
}

impl Inception {
    /// Builds the module for `in_channels × hw × hw` inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if `hw` is too small for the 5×5 branch geometry.
    pub fn new(
        name: &str,
        in_channels: usize,
        hw: usize,
        spec: InceptionSpec,
        seed: u64,
    ) -> Result<Self, DnnError> {
        let conv = |suffix: &str,
                    geom: Conv2dGeometry,
                    out: usize|
         -> Result<Box<dyn Layer>, DnnError> {
            Ok(Box::new(Conv2d::new(&format!("{name}/{suffix}"), geom, out, Filler::Msra, seed)?))
        };
        let relu =
            |suffix: &str| -> Box<dyn Layer> { Box::new(Relu::new(&format!("{name}/{suffix}"))) };

        // Branch 1: 1x1 conv.
        let b1 = Branch {
            layers: vec![
                conv("1x1", Conv2dGeometry::square(in_channels, hw, 1, 1, 0), spec.c1)?,
                relu("relu_1x1"),
            ],
            out_channels: spec.c1,
        };
        // Branch 2: 1x1 reduce -> 3x3.
        let b2 = Branch {
            layers: vec![
                conv(
                    "3x3_reduce",
                    Conv2dGeometry::square(in_channels, hw, 1, 1, 0),
                    spec.c3_reduce,
                )?,
                relu("relu_3x3_reduce"),
                conv("3x3", Conv2dGeometry::square(spec.c3_reduce, hw, 3, 1, 1), spec.c3)?,
                relu("relu_3x3"),
            ],
            out_channels: spec.c3,
        };
        // Branch 3: 1x1 reduce -> 5x5.
        let b3 = Branch {
            layers: vec![
                conv(
                    "5x5_reduce",
                    Conv2dGeometry::square(in_channels, hw, 1, 1, 0),
                    spec.c5_reduce,
                )?,
                relu("relu_5x5_reduce"),
                conv("5x5", Conv2dGeometry::square(spec.c5_reduce, hw, 5, 1, 2), spec.c5)?,
                relu("relu_5x5"),
            ],
            out_channels: spec.c5,
        };
        // Branch 4: 3x3 max pool (stride 1, pad 1) -> 1x1 projection.
        let b4 = Branch {
            layers: vec![
                Box::new(Pool2d::new(
                    &format!("{name}/pool"),
                    PoolKind::Max,
                    Conv2dGeometry::square(in_channels, hw, 3, 1, 1),
                )?),
                conv(
                    "pool_proj",
                    Conv2dGeometry::square(in_channels, hw, 1, 1, 0),
                    spec.pool_proj,
                )?,
                relu("relu_pool_proj"),
            ],
            out_channels: spec.pool_proj,
        };

        Ok(Inception { name: name.to_string(), branches: vec![b1, b2, b3, b4], hw, in_channels })
    }
}

impl Layer for Inception {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor, DnnError> {
        let dims = input.dims();
        if dims.len() != 4
            || dims[1] != self.in_channels
            || dims[2] != self.hw
            || dims[3] != self.hw
        {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!(
                    "expected (N, {}, {}, {}), got {dims:?}",
                    self.in_channels, self.hw, self.hw
                ),
            });
        }
        let batch = dims[0];
        let spatial = self.hw * self.hw;
        let outputs: Vec<Tensor> =
            self.branches.iter_mut().map(|b| b.forward(input, phase)).collect::<Result<_, _>>()?;
        // Concatenate along the channel axis.
        let total_c: usize = self.branches.iter().map(|b| b.out_channels).sum();
        let mut out = Tensor::zeros(&[batch, total_c, self.hw, self.hw]);
        for n in 0..batch {
            let mut c_off = 0;
            for (b, branch_out) in self.branches.iter().zip(outputs.iter()) {
                let src_len = b.out_channels * spatial;
                let src = &branch_out.data()[n * src_len..(n + 1) * src_len];
                let dst_start = (n * total_c + c_off) * spatial;
                out.data_mut()[dst_start..dst_start + src_len].copy_from_slice(src);
                c_off += b.out_channels;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let total_c: usize = self.branches.iter().map(|b| b.out_channels).sum();
        let spatial = self.hw * self.hw;
        if !d_output.len().is_multiple_of(total_c * spatial) {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output shape mismatch".to_string(),
            });
        }
        let batch = d_output.len() / (total_c * spatial);
        // Split the gradient per branch, backprop, and sum input grads.
        let mut d_input: Option<Tensor> = None;
        let mut c_off = 0;
        for branch in self.branches.iter_mut() {
            let bc = branch.out_channels;
            let mut d_branch = Tensor::zeros(&[batch, bc, self.hw, self.hw]);
            for n in 0..batch {
                let src_start = (n * total_c + c_off) * spatial;
                let dst_start = n * bc * spatial;
                d_branch.data_mut()[dst_start..dst_start + bc * spatial]
                    .copy_from_slice(&d_output.data()[src_start..src_start + bc * spatial]);
            }
            let g = branch.backward(&d_branch)?;
            match &mut d_input {
                None => d_input = Some(g),
                Some(acc) => {
                    for (a, v) in acc.data_mut().iter_mut().zip(g.data().iter()) {
                        *a += v;
                    }
                }
            }
            c_off += bc;
        }
        Ok(d_input.expect("at least one branch"))
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        self.branches
            .iter_mut()
            .flat_map(|b| b.layers.iter_mut().flat_map(|l| l.params_and_grads()))
            .collect()
    }
}

impl std::fmt::Debug for Inception {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inception")
            .field("name", &self.name)
            .field("branches", &self.branches.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> InceptionSpec {
        InceptionSpec { c1: 2, c3_reduce: 2, c3: 3, c5_reduce: 1, c5: 2, pool_proj: 1 }
    }

    #[test]
    fn forward_concatenates_branches() {
        let mut m = Inception::new("i", 4, 6, spec(), 3).unwrap();
        let x = Tensor::ones(&[2, 4, 6, 6]);
        let y = m.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.dims(), &[2, 8, 6, 6]);
    }

    #[test]
    fn rejects_wrong_input() {
        let mut m = Inception::new("i", 4, 6, spec(), 3).unwrap();
        assert!(m.forward(&Tensor::zeros(&[1, 3, 6, 6]), Phase::Train).is_err());
        assert!(m.forward(&Tensor::zeros(&[1, 4, 5, 5]), Phase::Train).is_err());
    }

    #[test]
    fn param_count_covers_all_branches() {
        let mut m = Inception::new("i", 4, 6, spec(), 3).unwrap();
        let s = spec();
        // conv params: out*(in*kh*kw) + out per conv.
        let expected = (s.c1 * 4 + s.c1)
            + (s.c3_reduce * 4 + s.c3_reduce)
            + (s.c3 * s.c3_reduce * 9 + s.c3)
            + (s.c5_reduce * 4 + s.c5_reduce)
            + (s.c5 * s.c5_reduce * 25 + s.c5)
            + (s.pool_proj * 4 + s.pool_proj);
        assert_eq!(m.param_len(), expected);
    }

    #[test]
    fn gradient_check_through_the_module() {
        let mut m = Inception::new(
            "i",
            2,
            4,
            InceptionSpec { c1: 1, c3_reduce: 1, c3: 1, c5_reduce: 1, c5: 1, pool_proj: 1 },
            7,
        )
        .unwrap();
        let x =
            Tensor::from_vec((0..32).map(|i| ((i as f32) * 0.47).sin()).collect(), &[1, 2, 4, 4])
                .unwrap();
        let d_out = Tensor::from_vec(
            (0..64).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect(),
            &[1, 4, 4, 4],
        )
        .unwrap();
        m.forward(&x, Phase::Train).unwrap();
        let d_in = m.backward(&d_out).unwrap();

        // Finite differences w.r.t. the input through a fresh module with
        // the same seed (deterministic init).
        let loss = |x: &Tensor| -> f32 {
            let mut m2 = Inception::new(
                "i",
                2,
                4,
                InceptionSpec { c1: 1, c3_reduce: 1, c3: 1, c5_reduce: 1, c5: 1, pool_proj: 1 },
                7,
            )
            .unwrap();
            let y = m2.forward(x, Phase::Train).unwrap();
            y.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2;
        let mut xp = x.clone();
        for &i in &[0usize, 7, 15, 23, 31] {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = loss(&xp);
            xp.data_mut()[i] = orig - eps;
            let lm = loss(&xp);
            xp.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (d_in.data()[i] - numeric).abs() < 2e-2,
                "i={i}: {} vs {numeric}",
                d_in.data()[i]
            );
        }
    }

    #[test]
    fn zero_grads_resets_every_branch() {
        let mut m = Inception::new("i", 2, 4, spec(), 1).unwrap();
        let x = Tensor::ones(&[1, 2, 4, 4]);
        m.forward(&x, Phase::Train).unwrap();
        let c = m.forward(&x, Phase::Train).unwrap();
        m.backward(&Tensor::ones(c.dims())).unwrap();
        let any_nonzero = m.params_and_grads().iter().any(|(_, g)| g.abs_max() > 0.0);
        assert!(any_nonzero);
        m.zero_grads();
        let all_zero = m.params_and_grads().iter().all(|(_, g)| g.abs_max() == 0.0);
        assert!(all_zero);
    }
}
