//! Replayable schedule traces (`.sched` files).
//!
//! A [`ScheduleTrace`] is the complete scheduling decision record of one
//! simulation run: every choice point the scheduler reached (equal-time
//! dispatch ties, channel wake order, message delivery order) together with
//! the alternative taken. Forcing the same trace through
//! [`crate::Simulation::replay`] reproduces the run bit-identically —
//! including any counterexample the explorer found — because everything
//! else about the simulator is already deterministic.
//!
//! The on-disk format is a line-oriented text file:
//!
//! ```text
//! schedcheck v1
//! tie 3 1
//! deliver 2 1
//! wake 2 0
//! ```
//!
//! Each line after the header is `<kind> <arity> <chosen>`. Choice points
//! past the end of the trace resolve to their defaults, so a trace is also a
//! valid *prefix* forcing — the mechanism the explorer's DFS is built on.

use std::path::Path;

use crate::explore::ChoiceKind;

/// One resolved choice point in a recorded schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Which kind of choice point this was.
    pub kind: ChoiceKind,
    /// How many alternatives the point offered (always ≥ 2; points with a
    /// single alternative are not recorded).
    pub arity: u16,
    /// The 0-based alternative taken.
    pub chosen: u16,
}

/// A replayable schedule: the ordered choice-point record of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// The choices, in the order the scheduler reached them.
    pub entries: Vec<TraceEntry>,
}

const HEADER: &str = "schedcheck v1";

impl ScheduleTrace {
    /// Renders the trace in the `.sched` text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.entries {
            out.push_str(e.kind.as_str());
            out.push(' ');
            out.push_str(&e.arity.to_string());
            out.push(' ');
            out.push_str(&e.chosen.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses the `.sched` text format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line (or a missing /
    /// wrong-version header).
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => return Err(format!("bad trace header {other:?}, expected {HEADER:?}")),
        }
        let mut entries = Vec::new();
        for (no, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let entry = (|| {
                let kind = ChoiceKind::parse(parts.next()?)?;
                let arity: u16 = parts.next()?.parse().ok()?;
                let chosen: u16 = parts.next()?.parse().ok()?;
                if parts.next().is_some() || chosen >= arity || arity < 2 {
                    return None;
                }
                Some(TraceEntry { kind, arity, chosen })
            })()
            .ok_or_else(|| format!("bad trace line {}: {line:?}", no + 2))?;
            entries.push(entry);
        }
        Ok(ScheduleTrace { entries })
    }

    /// Writes the trace to `path` in the `.sched` text format.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Reads a trace previously written by [`ScheduleTrace::save`].
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let t = ScheduleTrace {
            entries: vec![
                TraceEntry { kind: ChoiceKind::Tie, arity: 3, chosen: 1 },
                TraceEntry { kind: ChoiceKind::Deliver, arity: 2, chosen: 1 },
                TraceEntry { kind: ChoiceKind::Wake, arity: 4, chosen: 0 },
            ],
        };
        assert_eq!(ScheduleTrace::from_text(&t.to_text()), Ok(t));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(ScheduleTrace::from_text("").is_err());
        assert!(ScheduleTrace::from_text("schedcheck v0\n").is_err());
        assert!(ScheduleTrace::from_text("schedcheck v1\nspin 2 0\n").is_err());
        assert!(ScheduleTrace::from_text("schedcheck v1\ntie 2 2\n").is_err());
        assert!(ScheduleTrace::from_text("schedcheck v1\ntie 1 0\n").is_err());
        assert!(ScheduleTrace::from_text("schedcheck v1\ntie 2\n").is_err());
    }

    #[test]
    fn empty_trace_is_just_the_header() {
        let t = ScheduleTrace::default();
        assert_eq!(t.to_text(), "schedcheck v1\n");
        assert_eq!(ScheduleTrace::from_text("schedcheck v1\n"), Ok(t));
    }
}
