//! Termination alignment (paper §III-E): how the three criteria trade
//! wasted GPU occupancy against completed work when workers drift apart.
//!
//! Heavy compute jitter makes workers finish at very different times under
//! the plain fixed-iteration policy (the BVLC Caffe behaviour the paper
//! criticises: early finishers idle while holding their GPU). The shared
//! progress board lets the fleet stop together.
//!
//! Run with `cargo run --release --example termination_alignment`.

use shmcaffe_repro::models::WorkloadModel;
use shmcaffe_repro::platform::config::ShmCaffeConfig;
use shmcaffe_repro::platform::platforms::ShmCaffeA;
use shmcaffe_repro::platform::termination::TerminationPolicy;
use shmcaffe_repro::platform::trainer::ModeledTrainerFactory;
use shmcaffe_repro::simnet::jitter::JitterModel;
use shmcaffe_repro::simnet::topology::ClusterSpec;
use shmcaffe_repro::simnet::SimDuration;

fn run(policy: TerminationPolicy) {
    let jitter = JitterModel { sigma: 0.35, stall_probability: 0.10, stall_factor: 2.0 };
    let factory = ModeledTrainerFactory::new(
        WorkloadModel::custom("demo", 4_000_000, SimDuration::from_millis(20)),
        jitter,
        1234,
    );
    let cfg = ShmCaffeConfig {
        max_iters: 200,
        progress_every: 10,
        termination: policy,
        ..Default::default()
    };
    let report =
        ShmCaffeA::new(ClusterSpec::paper_testbed(2), 8, cfg).run(factory).expect("platform runs");

    let iters: Vec<u64> = report.workers.iter().map(|w| w.iters).collect();
    let finishes: Vec<f64> = report.workers.iter().map(|w| w.finished_at.as_secs_f64()).collect();
    let first = finishes.iter().cloned().fold(f64::INFINITY, f64::min);
    let last = finishes.iter().cloned().fold(0.0, f64::max);
    let total: u64 = iters.iter().sum();
    println!("{policy:?}:");
    println!("  iterations per worker: {iters:?}");
    println!(
        "  first finish {first:.2}s, last finish {last:.2}s => idle-wait window {:.2}s",
        last - first
    );
    println!("  total completed iterations: {total}\n");
}

fn main() {
    println!(
        "termination alignment under heavy straggler jitter (8 workers, 200-iteration budget)\n"
    );
    for policy in [
        TerminationPolicy::FixedIterations,
        TerminationPolicy::MasterFinished,
        TerminationPolicy::FirstFinisher,
        TerminationPolicy::AverageIterations,
    ] {
        run(policy);
    }
    println!("FixedIterations maximises work but early finishers idle the longest;");
    println!("FirstFinisher minimises the idle window at the cost of completed iterations;");
    println!("AverageIterations is the compromise the paper recommends (criterion 3).");
}
