//! Caffe-like deep learning substrate for the ShmCaffe reproduction.
//!
//! ShmCaffe "uses Caffe as a deep learning computation library with very
//! small modifications" (paper §III-A). This crate is that computation
//! library: layers, sequential nets, the SGD solver with Caffe's
//! hyper-parameters (`base_lr`, `momentum`, `weight_decay`, `gamma`,
//! `step size`), datasets and an in-memory LMDB-like record store with a
//! background prefetch thread (the paper prefetches 10 minibatches).
//!
//! The crucial property for distributed training is the split between
//! gradient computation and weight update:
//!
//! * [`Solver::compute_gradients`] runs forward/backward on one minibatch,
//! * [`Solver::apply_update`] applies the (possibly aggregated or replaced)
//!   gradients with momentum and weight decay.
//!
//! All distributed algorithms in the `shmcaffe` crate (SEASGD, SSGD, HSGD)
//! are built from these two halves plus parameter-vector import/export
//! ([`Net::copy_weights_to`] / [`Net::load_weights_from`]).
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_dnn::{Net, Phase, Solver, SolverConfig};
//! use shmcaffe_dnn::layers::{InnerProduct, Relu};
//! use shmcaffe_dnn::data::{Dataset, SyntheticBlobs};
//! use shmcaffe_tensor::init::Filler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = Net::new("mlp");
//! net.add(InnerProduct::new("fc1", 4, 16, Filler::Xavier, 1));
//! net.add(Relu::new("relu1"));
//! net.add(InnerProduct::new("fc2", 16, 3, Filler::Xavier, 1));
//!
//! let data = SyntheticBlobs::new(3, 4, 300, 0.3, 7);
//! let mut solver = Solver::new(net, SolverConfig::default());
//! let (x, y) = data.minibatch(&(0..32).collect::<Vec<_>>())?;
//! let loss = solver.compute_gradients(&x, &y)?;
//! solver.apply_update();
//! assert!(loss > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
mod error;
mod layer;
pub mod layers;
pub mod metrics;
mod net;
pub mod netspec;
pub mod recorddb;
mod solver;

pub use error::DnnError;
pub use layer::{Layer, Phase};
pub use net::Net;
pub use solver::{LrPolicy, Snapshot, Solver, SolverConfig};
