//! Batch normalisation with learnable scale/shift.

use shmcaffe_tensor::Tensor;

use crate::{DnnError, Layer, Phase};

const EPS: f32 = 1e-5;

/// Batch normalisation.
///
/// For a rank-2 input `(N, D)` each feature is normalised over the batch;
/// for rank-4 `(N, C, H, W)` each channel is normalised over `N×H×W`
/// (spatial batch norm, as used by Inception/ResNet). Running statistics
/// with momentum 0.9 are used at test time.
#[derive(Debug)]
pub struct BatchNorm {
    name: String,
    channels: usize,
    gamma: Tensor,
    beta: Tensor,
    d_gamma: Tensor,
    d_beta: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    // Cached forward state for backward.
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Vec<f32>,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm {
    /// Creates a batch-norm layer over `channels` features/channels.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm {
            name: name.to_string(),
            channels,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            d_gamma: Tensor::zeros(&[channels]),
            d_beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            cache: None,
        }
    }

    /// Iterates over (channel, element-index) pairs of the layout.
    fn layout(&self, dims: &[usize]) -> Result<(usize, usize), DnnError> {
        match dims.len() {
            2 if dims[1] == self.channels => Ok((dims[0], 1)),
            4 if dims[1] == self.channels => Ok((dims[0], dims[2] * dims[3])),
            _ => Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!(
                    "expected (N, {0}) or (N, {0}, H, W), got {dims:?}",
                    self.channels
                ),
            }),
        }
    }
}

impl Layer for BatchNorm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, phase: Phase) -> Result<Tensor, DnnError> {
        let (batch, spatial) = self.layout(input.dims())?;
        let group = batch * spatial; // elements normalised together per channel
        let x = input.data();
        let mut out = Tensor::zeros(input.dims());
        let chan_stride = self.channels * spatial;

        let mut x_hat = vec![0.0f32; x.len()];
        let mut inv_stds = vec![0.0f32; self.channels];

        #[allow(clippy::needless_range_loop)] // c indexes four parallel arrays
        for c in 0..self.channels {
            let (mean, var) = match phase {
                Phase::Train => {
                    let mut sum = 0.0f64;
                    for n in 0..batch {
                        let base = n * chan_stride + c * spatial;
                        for i in 0..spatial {
                            sum += x[base + i] as f64;
                        }
                    }
                    let mean = (sum / group as f64) as f32;
                    let mut var_sum = 0.0f64;
                    for n in 0..batch {
                        let base = n * chan_stride + c * spatial;
                        for i in 0..spatial {
                            let d = x[base + i] - mean;
                            var_sum += (d * d) as f64;
                        }
                    }
                    let var = (var_sum / group as f64) as f32;
                    self.running_mean[c] =
                        self.momentum * self.running_mean[c] + (1.0 - self.momentum) * mean;
                    self.running_var[c] =
                        self.momentum * self.running_var[c] + (1.0 - self.momentum) * var;
                    (mean, var)
                }
                Phase::Test => (self.running_mean[c], self.running_var[c]),
            };
            let inv_std = 1.0 / (var + EPS).sqrt();
            inv_stds[c] = inv_std;
            let g = self.gamma.data()[c];
            let b = self.beta.data()[c];
            for n in 0..batch {
                let base = n * chan_stride + c * spatial;
                for i in 0..spatial {
                    let xh = (x[base + i] - mean) * inv_std;
                    x_hat[base + i] = xh;
                    out.data_mut()[base + i] = g * xh + b;
                }
            }
        }

        if phase == Phase::Train {
            self.cache = Some(BnCache { x_hat, inv_std: inv_stds, dims: input.dims().to_vec() });
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        let cache = self.cache.as_ref().ok_or_else(|| DnnError::BadInput {
            layer: self.name.clone(),
            message: "backward requires a training-phase forward".to_string(),
        })?;
        if d_output.dims() != cache.dims.as_slice() {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "d_output shape mismatch".to_string(),
            });
        }
        let (batch, spatial) = self.layout(&cache.dims)?;
        let group = (batch * spatial) as f32;
        let chan_stride = self.channels * spatial;
        let dy = d_output.data();
        let mut d_input = Tensor::zeros(&cache.dims);

        for c in 0..self.channels {
            let g = self.gamma.data()[c];
            let inv_std = cache.inv_std[c];
            // Accumulate per-channel sums.
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for n in 0..batch {
                let base = n * chan_stride + c * spatial;
                for i in 0..spatial {
                    sum_dy += dy[base + i] as f64;
                    sum_dy_xhat += (dy[base + i] * cache.x_hat[base + i]) as f64;
                }
            }
            self.d_beta.data_mut()[c] += sum_dy as f32;
            self.d_gamma.data_mut()[c] += sum_dy_xhat as f32;

            let mean_dy = sum_dy as f32 / group;
            let mean_dy_xhat = sum_dy_xhat as f32 / group;
            for n in 0..batch {
                let base = n * chan_stride + c * spatial;
                for i in 0..spatial {
                    let xh = cache.x_hat[base + i];
                    d_input.data_mut()[base + i] =
                        g * inv_std * (dy[base + i] - mean_dy - xh * mean_dy_xhat);
                }
            }
        }
        Ok(d_input)
    }

    fn params_and_grads(&mut self) -> Vec<(&mut Tensor, &mut Tensor)> {
        vec![(&mut self.gamma, &mut self.d_gamma), (&mut self.beta, &mut self.d_beta)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_output_is_normalized() {
        let mut bn = BatchNorm::new("bn", 2);
        let x =
            Tensor::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0], &[4, 2]).unwrap();
        let y = bn.forward(&x, Phase::Train).unwrap();
        // Each feature column should have ~zero mean, ~unit variance.
        for c in 0..2 {
            let col: Vec<f32> = (0..4).map(|n| y.data()[n * 2 + c]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn test_phase_uses_running_stats() {
        let mut bn = BatchNorm::new("bn", 1);
        let x = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[4, 1]).unwrap();
        for _ in 0..200 {
            bn.forward(&x, Phase::Train).unwrap();
        }
        // Running stats converge to batch stats (mean 5, var 5).
        let y = bn.forward(&x, Phase::Test).unwrap();
        let expected: Vec<f32> =
            x.data().iter().map(|v| (v - 5.0) / (5.0f32 + EPS).sqrt()).collect();
        for (got, want) in y.data().iter().zip(expected.iter()) {
            assert!((got - want).abs() < 0.05, "{got} vs {want}");
        }
    }

    #[test]
    fn spatial_layout_normalizes_per_channel() {
        let mut bn = BatchNorm::new("bn", 2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // n0 c0 (2x2)
                10.0, 20.0, 30.0, 40.0, // n0 c1
                5.0, 6.0, 7.0, 8.0, // n1 c0
                50.0, 60.0, 70.0, 80.0, // n1 c1
            ],
            &[2, 2, 2, 2],
        )
        .unwrap();
        let y = bn.forward(&x, Phase::Train).unwrap();
        // Channel 0 values across N and HW should be normalised together.
        let c0: Vec<f32> = vec![
            y.at(&[0, 0, 0, 0]),
            y.at(&[0, 0, 0, 1]),
            y.at(&[0, 0, 1, 0]),
            y.at(&[0, 0, 1, 1]),
            y.at(&[1, 0, 0, 0]),
            y.at(&[1, 0, 0, 1]),
            y.at(&[1, 0, 1, 0]),
            y.at(&[1, 0, 1, 1]),
        ];
        let mean: f32 = c0.iter().sum::<f32>() / 8.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm::new("bn", 3);
        let x = Tensor::from_vec((0..12).map(|i| (i as f32 * 0.7).sin() * 2.0).collect(), &[4, 3])
            .unwrap();
        let d_out =
            Tensor::from_vec((0..12).map(|i| ((i % 5) as f32 - 2.0) * 0.3).collect(), &[4, 3])
                .unwrap();

        bn.forward(&x, Phase::Train).unwrap();
        let d_in = bn.backward(&d_out).unwrap();

        // Finite differences through a *fresh* layer (running stats change,
        // but the train-phase output doesn't depend on them).
        let loss = |x: &Tensor| -> f32 {
            let mut bn2 = BatchNorm::new("bn", 3);
            let y = bn2.forward(x, Phase::Train).unwrap();
            y.data().iter().zip(d_out.data()).map(|(a, b)| a * b).sum()
        };
        let eps = 1e-2;
        let mut xp = x.clone();
        for i in 0..12 {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = loss(&xp);
            xp.data_mut()[i] = orig - eps;
            let lm = loss(&xp);
            xp.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (d_in.data()[i] - numeric).abs() < 2e-2,
                "i={i}: {} vs {numeric}",
                d_in.data()[i]
            );
        }
    }

    #[test]
    fn backward_needs_train_forward() {
        let mut bn = BatchNorm::new("bn", 1);
        let x = Tensor::zeros(&[2, 1]);
        bn.forward(&x, Phase::Test).unwrap();
        assert!(bn.backward(&x).is_err());
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut bn = BatchNorm::new("bn", 3);
        assert!(bn.forward(&Tensor::zeros(&[2, 4]), Phase::Train).is_err());
    }
}
