//! Robustness sweep: fault rate × platform.
//!
//! Three experiments, reported in the `fig09_table2_training_time` table
//! format:
//!
//! 1. **Transient-fault sweep** — ShmCaffe-A under a per-operation failure
//!    probability of 0/1/5/10% on the SMB transport. The retry layer rides
//!    the faults out; the table shows the wall-clock cost, fault/retry
//!    counts, dropped elastic updates, and worst recovery latency.
//! 2. **Worker-crash matrix** — one rank of eight killed mid-run on every
//!    platform that accepts a fault plan. SEASGD survives with its
//!    remaining workers; synchronous allreduce aborts.
//! 3. **Failover sweep** — a replicated memory-server pair whose primary
//!    is crashed at varying points of the run. Clients fail over to the
//!    standby; the table records the recovery cost in virtual time and
//!    the elastic updates dropped while the crash was being detected.
//! 4. **Partition sweep** — an asymmetric network partition isolates the
//!    primary (plus one worker node) from the standby at 25/50/75% of the
//!    run, healing 200 ms later. The primary's authority lease lapses and
//!    it self-fences; the table records the stale writes fenced off, the
//!    increments the minority buffered/dropped/replayed in degraded mode,
//!    and the segments reconciled when the partition healed.
//! 5. **Corruption sweep** — wire bit-flip rate × scrub cadence on a
//!    CRC-paged replicated pair with DRAM decays at 25/50/75% of the run.
//!    The table records detected/repaired/unrepairable corruption counts
//!    and the final-loss delta against a fault-free paged run.
//!
//! Everything is seeded: rerunning the binary reproduces identical tables.
//! With `SHMCAFFE_BENCH_JSON` set the failover and partition sweeps (plus
//! the other two tables) are written to `BENCH_fault.json` at the repo
//! root.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin fault_sweep`.

use shmcaffe::platforms::{MpiCaffe, ShmCaffeA, SsgdConfig};
use shmcaffe::trainer::ModeledTrainerFactory;
use shmcaffe::ShmCaffeConfig;
use shmcaffe_bench::json::{emit_figure, Json};
use shmcaffe_bench::table::Table;
use shmcaffe_models::{CnnModel, WorkloadModel};
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::{ClusterSpec, NodeId};
use shmcaffe_simnet::{SimDuration, SimTime};
use shmcaffe_smb::SmbServerConfig;

const GPUS: usize = 8;
const NODES: usize = 2;
const ITERS: usize = 100;
const SEED: u64 = 42;

fn factory() -> ModeledTrainerFactory {
    ModeledTrainerFactory::new(
        WorkloadModel::from_cnn(CnnModel::InceptionV1),
        JitterModel::hpc_default(),
        SEED,
    )
}

fn shm_cfg() -> ShmCaffeConfig {
    ShmCaffeConfig {
        max_iters: ITERS,
        progress_every: 25,
        jitter: JitterModel::NONE,
        ..Default::default()
    }
}

fn main() {
    println!("Fault sweep: Inception_v1, {GPUS} GPUs, {ITERS} iterations, seed {SEED}\n");

    let mut transient = Table::new(
        "ShmCaffe-A under transient SMB op failures",
        &["op fail", "wall (s)", "faults", "retries", "dropped", "max recovery (ms)"],
    );
    for rate in [0.0f64, 0.01, 0.05, 0.10] {
        let plan = FaultPlan::new(SEED).with_op_failure_prob(rate);
        let report = ShmCaffeA::new(ClusterSpec::paper_testbed(NODES), GPUS, shm_cfg())
            .with_fault_plan(plan)
            .run(factory())
            .expect("retry layer absorbs transient faults");
        transient.row_owned(vec![
            format!("{:.0}%", rate * 100.0),
            format!("{:.3}", report.wall.as_secs_f64()),
            report.total_faults().to_string(),
            report.total_retries().to_string(),
            report.total_dropped_updates().to_string(),
            format!("{:.2}", report.max_recovery_ms()),
        ]);
    }
    transient.print();
    println!();

    let crash = || FaultPlan::new(SEED).crash_worker(1, SimTime::from_millis(500));
    let mut crashes = Table::new(
        "One of 8 workers killed at t = 500 ms",
        &["platform", "outcome", "survivor iters", "crashed", "wall (s)"],
    );
    let shm = ShmCaffeA::new(ClusterSpec::paper_testbed(NODES), GPUS, shm_cfg())
        .with_fault_plan(crash())
        .with_server_config(SmbServerConfig {
            lease_timeout: SimDuration::from_millis(200),
            ..Default::default()
        })
        .run(factory());
    match shm {
        Ok(report) => {
            let survivor_iters =
                report.workers.iter().filter(|w| !w.crashed).map(|w| w.iters).min().unwrap_or(0);
            crashes.row_owned(vec![
                "ShmCaffe-A".to_string(),
                "completed".to_string(),
                survivor_iters.to_string(),
                report.crashed_workers().to_string(),
                format!("{:.3}", report.wall.as_secs_f64()),
            ]);
        }
        Err(e) => {
            crashes.row_owned(vec![
                "ShmCaffe-A".to_string(),
                format!("FAILED: {e}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
    }
    let mut abort_reason = None;
    let mpi = MpiCaffe::new(
        ClusterSpec::paper_testbed(NODES),
        GPUS,
        SsgdConfig { max_iters: ITERS, ..Default::default() },
    )
    .with_fault_plan(crash())
    .run(factory());
    match mpi {
        Ok(report) => {
            crashes.row_owned(vec![
                "MPICaffe".to_string(),
                "completed (unexpected)".to_string(),
                report.workers.iter().map(|w| w.iters).min().unwrap_or(0).to_string(),
                "0".to_string(),
                format!("{:.3}", report.wall.as_secs_f64()),
            ]);
        }
        Err(e) => {
            crashes.row_owned(vec![
                "MPICaffe".to_string(),
                "aborted (no recovery path)".to_string(),
                "-".to_string(),
                "1".to_string(),
                "-".to_string(),
            ]);
            abort_reason = Some(e);
        }
    }
    crashes.print();
    if let Some(e) = abort_reason {
        println!("MPICaffe abort reason: {e}");
    }
    println!();

    // Failover sweep: replicated memory-server pair, primary crashed at
    // 25/50/75% of the fault-free wall clock. The first retrying client to
    // hit the dead primary promotes the standby for the whole fleet.
    let replicated = || ClusterSpec { memory_servers: 2, ..ClusterSpec::paper_testbed(NODES) };
    let primary = NodeId(replicated().gpu_nodes);
    let run_replicated = |plan: Option<FaultPlan>| {
        let mut platform = ShmCaffeA::new(replicated(), GPUS, shm_cfg())
            .with_standby(SimDuration::from_millis(20));
        if let Some(plan) = plan {
            platform = platform.with_fault_plan(plan);
        }
        platform.run(factory())
    };
    let clean = run_replicated(None).expect("fault-free replicated run");
    let mut failover = Table::new(
        "Primary memory-server crash with standby failover",
        &[
            "crash at (s)",
            "wall (s)",
            "wall delta (s)",
            "max op recovery (ms)",
            "faults",
            "retries",
            "dropped",
        ],
    );
    for frac in [0.25f64, 0.50, 0.75] {
        let at = SimTime::from_nanos((clean.wall.as_nanos() as f64 * frac) as u64);
        let plan = FaultPlan::new(SEED).crash_memory_server(primary, at);
        let report = run_replicated(Some(plan)).expect("standby absorbs the primary's crash");
        failover.row_owned(vec![
            format!("{:.3}", at.as_secs_f64()),
            format!("{:.3}", report.wall.as_secs_f64()),
            format!("{:+.3}", report.wall.as_secs_f64() - clean.wall.as_secs_f64()),
            format!("{:.2}", report.max_recovery_ms()),
            report.total_faults().to_string(),
            report.total_retries().to_string(),
            report.total_dropped_updates().to_string(),
        ]);
    }
    // Partition sweep: the primary (with the workers of node 0) is severed
    // from the standby (with node 1) at 25/50/75% of the run for 200 ms.
    // The authority lease (60 ms, renewed by 20 ms replication passes)
    // lapses inside every window, so the stale primary self-fences, the
    // majority side promotes the standby, and the minority rides the
    // outage in degraded mode until the heal.
    let standby = NodeId(replicated().gpu_nodes + 1);
    let fencing =
        SmbServerConfig { authority_timeout: SimDuration::from_millis(60), ..Default::default() };
    let run_partitioned = |plan: Option<FaultPlan>| {
        let mut platform = ShmCaffeA::new(replicated(), GPUS, shm_cfg())
            .with_standby(SimDuration::from_millis(20))
            .with_server_config(fencing);
        if let Some(plan) = plan {
            platform = platform.with_fault_plan(plan);
        }
        platform.run(factory())
    };
    let part_clean = run_partitioned(None).expect("fault-free fenced run");
    let mut partition = Table::new(
        "200 ms split-brain partition isolating the primary",
        &[
            "partition at (s)",
            "wall (s)",
            "wall delta (s)",
            "fenced",
            "buffered",
            "dropped",
            "replayed",
            "resynced",
        ],
    );
    for frac in [0.25f64, 0.50, 0.75] {
        let at = SimTime::from_nanos((part_clean.wall.as_nanos() as f64 * frac) as u64);
        let heal = at + SimDuration::from_millis(200);
        let plan = FaultPlan::new(SEED).partition(
            vec![vec![NodeId(0), primary], vec![NodeId(1), standby]],
            at,
            Some(heal),
        );
        let report = run_partitioned(Some(plan)).expect("fencing absorbs the split brain");
        partition.row_owned(vec![
            format!("{:.3}", at.as_secs_f64()),
            format!("{:.3}", report.wall.as_secs_f64()),
            format!("{:+.3}", report.wall.as_secs_f64() - part_clean.wall.as_secs_f64()),
            report.fenced_rejections.to_string(),
            report.total_partition_buffered().to_string(),
            report.total_partition_dropped().to_string(),
            report.total_reconciled_updates().to_string(),
            format!("{}/{}", report.reconcile_discarded, report.reconcile_resynced),
        ]);
    }
    partition.print();
    println!();

    // Corruption sweep: wire bit-flip rate × scrub cadence on a CRC-paged
    // replicated pair, with three DRAM decays scheduled at 25/50/75% of
    // the clean run on the primary. Every flip is caught by the page CRC
    // (wire flips on the transfer, decays by the scrubber or the next
    // read), poisoned pages are re-fetched from the standby, and the loss
    // delta shows what the stale-snapshot repairs cost convergence.
    let clean_mean_loss = |r: &shmcaffe::TrainingReport| {
        r.workers.iter().map(|w| w.final_loss as f64).sum::<f64>() / r.workers.len() as f64
    };
    let paged = |scrub_ms: u64| SmbServerConfig {
        page_elems: 65_536,
        scrub_interval: SimDuration::from_millis(scrub_ms),
        ..Default::default()
    };
    let decay_times: Vec<SimTime> = [0.25f64, 0.50, 0.75]
        .iter()
        .map(|f| SimTime::from_nanos((clean.wall.as_nanos() as f64 * f) as u64))
        .collect();
    let run_corrupted = |flip: f64, scrub_ms: u64| {
        let mut plan = FaultPlan::new(SEED).with_wire_flip_prob(flip);
        for &at in &decay_times {
            plan = plan.decay_dram(primary, at);
        }
        ShmCaffeA::new(replicated(), GPUS, shm_cfg())
            .with_standby(SimDuration::from_millis(20))
            .with_server_config(paged(scrub_ms))
            .with_fault_plan(plan)
            .run(factory())
            .expect("the CRC grid + standby repair absorb seeded corruption")
    };
    let paged_clean = ShmCaffeA::new(replicated(), GPUS, shm_cfg())
        .with_standby(SimDuration::from_millis(20))
        .with_server_config(paged(10))
        .run(factory())
        .expect("fault-free paged run");
    let base_loss = clean_mean_loss(&paged_clean);
    let mut corruption = Table::new(
        "Wire flips + DRAM decay on a CRC-paged pair (repair from standby)",
        &[
            "flip rate",
            "scrub (ms)",
            "wall (s)",
            "detected",
            "repaired",
            "unrepairable",
            "loss delta",
        ],
    );
    for flip in [0.0f64, 0.01, 0.05] {
        for scrub_ms in [5u64, 20] {
            let report = run_corrupted(flip, scrub_ms);
            corruption.row_owned(vec![
                format!("{:.0}%", flip * 100.0),
                scrub_ms.to_string(),
                format!("{:.3}", report.wall.as_secs_f64()),
                report.total_corruptions_detected().to_string(),
                report.total_corruptions_repaired().to_string(),
                report.total_corruptions_unrepairable().to_string(),
                format!("{:+.4}", clean_mean_loss(&report) - base_loss),
            ]);
        }
    }
    corruption.print();
    println!();
    emit_figure(
        "fault",
        &failover,
        vec![
            ("clean_wall_s", Json::Num(clean.wall.as_secs_f64())),
            ("replication_interval_ms", Json::Int(20)),
            ("authority_timeout_ms", Json::Int(60)),
            ("transient", Json::from(&transient)),
            ("worker_crash", Json::from(&crashes)),
            ("partition", Json::from(&partition)),
            ("corruption", Json::from(&corruption)),
            ("corruption_page_elems", Json::Int(65_536)),
            ("seed", Json::Int(SEED as i64)),
            ("fault_seed", Json::Int(SEED as i64)),
        ],
    );
    println!();
    println!(
        "SEASGD's elastic averaging absorbs both transient transport faults \
         (bounded retries) and worker death (lease eviction + survivor \
         completion); a replicated SMB pair additionally survives the loss \
         of the primary memory server and — with epoch fencing — a \
         split-brain partition of the pair itself; synchronous allreduce \
         has no recovery path and aborts."
    );
}
