//! Table IV — Parameter size and computation time of the four CNN models.
//!
//! The calibrated constants (with provenance in DESIGN.md §1) plus a live
//! measurement of the trainable proxy networks on this machine, to show
//! the real layer library at work.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin table4_model_stats`.

use shmcaffe_bench::json::{emit_figure, Json};
use shmcaffe_bench::table::Table;
use shmcaffe_dnn::Phase;
use shmcaffe_models::{proxies, CnnModel};
use shmcaffe_tensor::Tensor;
use std::time::Instant;

fn main() {
    println!("Table IV reproduction: model parameter sizes and computation times\n");

    let mut table = Table::new(
        "Paper models (calibrated; batch = minibatch column)",
        &["model", "params (MB)", "minibatch", "image", "fwd (ms)", "bwd (ms)", "total (ms)"],
    );
    for m in CnnModel::ALL {
        table.row_owned(vec![
            m.to_string(),
            format!("{:.1}", m.param_bytes() as f64 / 1e6),
            m.minibatch().to_string(),
            format!("{0}x{0}", m.image_hw()),
            format!("{:.1}", m.forward_time().as_millis_f64()),
            format!("{:.1}", m.backward_time().as_millis_f64()),
            format!("{:.1}", m.comp_time().as_millis_f64()),
        ]);
    }
    table.print();

    // Live measurement of the proxy CNN on this host.
    let mut proxy = proxies::small_cnn(3, 16, 10, 1).expect("geometry fits");
    let batch = 32;
    let x = Tensor::zeros(&[batch, 3, 16, 16]);
    let labels: Vec<usize> = (0..batch).map(|i| i % 10).collect();
    // Warm-up.
    proxy.forward_loss(&x, &labels, Phase::Train).expect("shapes match");
    proxy.backward_from_loss(&labels).expect("forward ran");

    let reps = 20;
    let t0 = Instant::now();
    for _ in 0..reps {
        proxy.forward_loss(&x, &labels, Phase::Train).expect("shapes match");
    }
    let fwd_ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let t1 = Instant::now();
    for _ in 0..reps {
        proxy.forward_loss(&x, &labels, Phase::Train).expect("shapes match");
        proxy.backward_from_loss(&labels).expect("forward ran");
    }
    let total_ms = t1.elapsed().as_secs_f64() * 1e3 / reps as f64;

    let mut live = Table::new(
        "Trainable proxy (small_cnn, 3x16x16, batch 32) measured on this host",
        &["net", "params", "fwd (ms)", "fwd+bwd (ms)"],
    );
    live.row_owned(vec![
        "small_cnn_proxy".to_string(),
        proxy.param_len().to_string(),
        format!("{fwd_ms:.2}"),
        format!("{total_ms:.2}"),
    ]);
    emit_figure(
        "table4_model_stats",
        &live,
        vec![
            ("proxy_fwd_ms", Json::Num(fwd_ms)),
            ("proxy_fwd_bwd_ms", Json::Num(total_ms)),
            ("calibrated_table", Json::from(&table)),
            // Host-clock measurement, no simulation and no fault plan.
            ("fault_seed", Json::Null),
        ],
    );
}
