//! MPICaffe: the authors' own MPI_Allreduce SSGD port of BVLC Caffe.
//!
//! "Instead of using the NCCL Allreduce library ... the aggregation of
//! gradients from all workers utilizes MPI Allreduce. In addition, this
//! MPICaffe is a distributed deep learning platform that makes each worker
//! do SSGD" (paper §IV-C). Like Caffe-MPI it pays the MPI copy/protocol
//! overhead, but the bandwidth-optimal ring avoids the star bottleneck.

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_mpi::MpiWorld;
use shmcaffe_simnet::fault::FaultPlan;
use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
use shmcaffe_simnet::Simulation;

use crate::report::{EvalPoint, TrainingReport, WorkerReport};
use crate::trainer::{Trainer, TrainerFactory};
use crate::PlatformError;

use super::caffe::SsgdConfig;
use super::run_sim;

/// MPICaffe: every rank computes gradients, an `MPI_Allreduce` aggregates
/// them, and every rank applies the identical update.
#[derive(Debug, Clone)]
pub struct MpiCaffe {
    spec: ClusterSpec,
    workers: usize,
    cfg: SsgdConfig,
    fault_plan: Option<FaultPlan>,
}

impl MpiCaffe {
    /// Configures the platform.
    pub fn new(spec: ClusterSpec, workers: usize, cfg: SsgdConfig) -> Self {
        MpiCaffe { spec, workers, cfg, fault_plan: None }
    }

    /// Injects a deterministic fault plan. SSGD has no recovery path: a
    /// crashed rank leaves the survivors blocked in `MPI_Allreduce`, which
    /// the simulator detects as a stall and reports as
    /// [`PlatformError::WorkerFailed`] — the platform aborts rather than
    /// hangs.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Runs SSGD training and returns the fleet report.
    ///
    /// # Errors
    ///
    /// Returns configuration errors or any propagated worker failure.
    pub fn run<F: TrainerFactory>(&self, factory: F) -> Result<TrainingReport, PlatformError> {
        if self.workers == 0 || self.workers > self.spec.total_gpus() {
            return Err(PlatformError::BadConfig(format!(
                "{} workers do not fit {} GPU slots",
                self.workers,
                self.spec.total_gpus()
            )));
        }
        if self.cfg.max_iters == 0 {
            return Err(PlatformError::BadConfig("max_iters must be positive".into()));
        }
        let spec = ClusterSpec { memory_servers: 0, ..self.spec };
        let fabric = match &self.fault_plan {
            Some(plan) => Fabric::with_faults(spec, plan.clone()),
            None => Fabric::new(spec),
        };
        let mpi = MpiWorld::new(fabric.clone(), self.workers);
        let factory = Arc::new(factory);
        let cfg = self.cfg;
        let n = self.workers;
        let report = Arc::new(Mutex::new(TrainingReport::new("MPICaffe", n)));

        let mut sim = Simulation::new();
        for rank in 0..n {
            let mut comm = mpi.comm(rank);
            let factory = Arc::clone(&factory);
            let report = Arc::clone(&report);
            let crash_at = fabric.fault_injector().and_then(|i| i.crash_time(rank));
            sim.spawn(&format!("mpicaffe_r{rank}"), move |ctx| {
                let ctx = &ctx;
                let mut trainer = factory.make(rank, n);
                let param_len = trainer.param_len();
                let wire_eff = (trainer.wire_bytes() as f64 / cfg.baseline.mpi_efficiency) as u64;
                let mut grads = vec![0.0f32; param_len];
                let mut wrep = WorkerReport::new(rank);
                let mut evals = Vec::new();
                let mut loss_ema = f32::NAN;
                let inv = 1.0 / n as f32;

                for iter in 1..=cfg.max_iters as u64 {
                    // Injected worker death: the rank simply vanishes. The
                    // surviving ranks block in the next allreduce forever;
                    // the scheduler's deadlock detection turns that into a
                    // WorkerFailed error for the whole platform.
                    if crash_at.is_some_and(|t| ctx.now() >= t) {
                        return;
                    }
                    let comp_start = ctx.now();
                    let loss = trainer.compute_gradients(ctx);
                    let comp_grad = ctx.now() - comp_start;

                    let comm_start = ctx.now();
                    trainer.read_grads(&mut grads);
                    let mut summed = if n > 1 {
                        comm.allreduce_wire(ctx, std::mem::take(&mut grads), wire_eff)
                    } else {
                        std::mem::take(&mut grads)
                    };
                    for g in summed.iter_mut() {
                        *g *= inv;
                    }
                    trainer.write_grads(&summed);
                    grads = summed;
                    let comm_time = ctx.now() - comm_start;

                    let upd_start = ctx.now();
                    trainer.apply_update(ctx);
                    wrep.comp_ms.record_duration_ms(comp_grad + (ctx.now() - upd_start));
                    wrep.comm_ms.record_duration_ms(comm_time);
                    loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };

                    if rank == 0 && cfg.eval_every > 0 && iter % cfg.eval_every as u64 == 0 {
                        if let Some(sample) = trainer.evaluate() {
                            evals.push(EvalPoint {
                                iter,
                                time: ctx.now(),
                                loss: sample.loss,
                                top1: sample.top1,
                                topk: sample.topk,
                            });
                        }
                    }
                }

                wrep.iters = cfg.max_iters as u64;
                wrep.finished_at = ctx.now();
                wrep.final_loss = loss_ema;
                let mut report = report.lock();
                report.workers[rank] = wrep;
                if rank == 0 {
                    report.evals = evals;
                    let mut final_w = vec![0.0f32; param_len];
                    trainer.read_weights(&mut final_w);
                    report.final_weights = Some(final_w);
                }
            });
        }

        let wall = run_sim(sim)?;
        let mut final_report =
            Arc::try_unwrap(report).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        final_report.wall = wall;
        Ok(final_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModeledTrainerFactory;
    use shmcaffe_models::{CnnModel, WorkloadModel};
    use shmcaffe_simnet::jitter::JitterModel;

    fn factory() -> ModeledTrainerFactory {
        ModeledTrainerFactory::new(
            WorkloadModel::from_cnn(CnnModel::InceptionV1),
            JitterModel::NONE,
            5,
        )
    }

    #[test]
    fn allreduce_beats_star_at_scale() {
        let cfg = SsgdConfig { max_iters: 5, ..Default::default() };
        let ring = MpiCaffe::new(ClusterSpec::paper_testbed(4), 16, cfg).run(factory()).unwrap();
        let star = super::super::CaffeMpi::new(ClusterSpec::paper_testbed(4), 16, cfg)
            .run(factory())
            .unwrap();
        assert!(
            ring.mean_comm_ms() < star.mean_comm_ms(),
            "ring {} vs star {}",
            ring.mean_comm_ms(),
            star.mean_comm_ms()
        );
    }

    #[test]
    fn workers_stay_in_lockstep() {
        let report = MpiCaffe::new(
            ClusterSpec::paper_testbed(2),
            8,
            SsgdConfig { max_iters: 6, ..Default::default() },
        )
        .run(factory())
        .unwrap();
        let t0 = report.workers[0].finished_at;
        for w in &report.workers {
            let dt = if w.finished_at > t0 { w.finished_at - t0 } else { t0 - w.finished_at };
            assert!(dt.as_millis_f64() < 100.0, "skew {dt}");
        }
    }
}
