use std::fmt;

use shmcaffe_dnn::DnnError;
use shmcaffe_rdma::RdmaError;
use shmcaffe_smb::SmbError;

/// Errors surfaced by the platform layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// A Soft-Memory-Box failure.
    Smb(SmbError),
    /// A DNN substrate failure.
    Dnn(DnnError),
    /// A raw RDMA failure.
    Rdma(RdmaError),
    /// Invalid platform configuration.
    BadConfig(String),
    /// A worker process failed; carries the propagated message.
    WorkerFailed(String),
    /// A peer or background thread stopped responding within a timeout.
    Timeout(String),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Smb(e) => write!(f, "smb error: {e}"),
            PlatformError::Dnn(e) => write!(f, "dnn error: {e}"),
            PlatformError::Rdma(e) => write!(f, "rdma error: {e}"),
            PlatformError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            PlatformError::WorkerFailed(msg) => write!(f, "worker failed: {msg}"),
            PlatformError::Timeout(msg) => write!(f, "timed out: {msg}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Smb(e) => Some(e),
            PlatformError::Dnn(e) => Some(e),
            PlatformError::Rdma(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SmbError> for PlatformError {
    fn from(e: SmbError) -> Self {
        PlatformError::Smb(e)
    }
}

impl From<DnnError> for PlatformError {
    fn from(e: DnnError) -> Self {
        PlatformError::Dnn(e)
    }
}

impl From<RdmaError> for PlatformError {
    fn from(e: RdmaError) -> Self {
        PlatformError::Rdma(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = PlatformError::BadConfig("x".into());
        assert!(e.source().is_none());
        assert!(e.to_string().contains('x'));
        let e = PlatformError::Smb(SmbError::NoMemoryServer);
        assert!(e.source().is_some());
    }
}
