//! CLI for the workspace invariant checker.
//!
//! Usage: `cargo run -p shmcaffe-analysis [workspace-root]`. Exits 0 when
//! the workspace is clean, 1 on violations or a malformed allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map_or_else(
        || {
            // The checker lives at <root>/crates/analysis.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        },
        PathBuf::from,
    );
    let root = match root.canonicalize() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot resolve workspace root {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let report = match shmcaffe_analysis::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for err in &report.allow_errors {
        eprintln!("error: {err}");
    }
    for v in &report.violations {
        eprintln!("error: {v}");
    }
    for entry in &report.unused_allows {
        eprintln!("warning: analysis.toml:{}: unused suppression {entry}", entry.line);
    }

    if report.is_clean() {
        println!(
            "analysis: workspace clean ({} suppression(s) in use, {} stale)",
            report.used_allows.len(),
            report.unused_allows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "analysis: {} violation(s), {} allowlist error(s)",
            report.violations.len(),
            report.allow_errors.len()
        );
        ExitCode::FAILURE
    }
}
