//! Downpour-style asynchronous SGD with a dedicated parameter server —
//! the DistBelief baseline the paper's related work (§II) contrasts EASGD
//! against: "the asynchronous method is a way in which the parameter
//! server updates the global weight whenever gradient arrives from a
//! worker, without aggregating all the gradients".
//!
//! Unlike ShmCaffe there is no shared-memory buffer and no elastic
//! mixing: workers *pull* the global weights, compute a gradient, and
//! *push* it; the server applies each gradient as it arrives (the
//! delayed-gradient problem §II describes emerges naturally from the
//! asynchrony). Traffic flows over MPI with the same copy-overhead factor
//! as the other MPI baselines.

use parking_lot::Mutex;
use std::sync::Arc;

use shmcaffe_mpi::{MpiData, MpiWorld};
use shmcaffe_simnet::topology::{ClusterSpec, Fabric};
use shmcaffe_simnet::{SimDuration, Simulation};

use crate::config::BaselineConfig;
use crate::report::{EvalPoint, TrainingReport, WorkerReport};
use crate::trainer::{Trainer, TrainerFactory};
use crate::PlatformError;

use super::run_sim;

const TAG_PULL: u32 = 200;
const TAG_WEIGHTS: u32 = 201;
const TAG_PUSH: u32 = 202;
const TAG_DONE: u32 = 203;

/// Configuration of the Downpour platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DownpourConfig {
    /// Local iterations per worker.
    pub max_iters: usize,
    /// Evaluate on worker 1 (the first computing rank) every this many
    /// iterations; 0 disables.
    pub eval_every: usize,
    /// Server-side learning rate applied to every arriving gradient.
    pub ps_lr: f32,
    /// Baseline calibration constants (MPI efficiency).
    pub baseline: BaselineConfig,
}

impl Default for DownpourConfig {
    fn default() -> Self {
        DownpourConfig {
            max_iters: 100,
            eval_every: 0,
            ps_lr: 0.05,
            baseline: BaselineConfig::default(),
        }
    }
}

/// Downpour ASGD: rank 0 is a dedicated parameter server (it does not
/// compute gradients); ranks `1..=workers` train.
#[derive(Debug, Clone)]
pub struct DownpourAsgd {
    spec: ClusterSpec,
    workers: usize,
    cfg: DownpourConfig,
}

impl DownpourAsgd {
    /// Configures the platform with `workers` computing workers (the
    /// parameter server occupies one extra rank slot).
    pub fn new(spec: ClusterSpec, workers: usize, cfg: DownpourConfig) -> Self {
        DownpourAsgd { spec, workers, cfg }
    }

    /// Runs training; worker reports are indexed `0..workers` (the server
    /// has no report slot).
    ///
    /// # Errors
    ///
    /// Returns configuration errors or any propagated worker failure.
    pub fn run<F: TrainerFactory>(&self, factory: F) -> Result<TrainingReport, PlatformError> {
        if self.workers == 0 || self.workers + 1 > self.spec.total_gpus() {
            return Err(PlatformError::BadConfig(format!(
                "{} workers + 1 server do not fit {} GPU slots",
                self.workers,
                self.spec.total_gpus()
            )));
        }
        if self.cfg.max_iters == 0 {
            return Err(PlatformError::BadConfig("max_iters must be positive".into()));
        }
        let spec = ClusterSpec { memory_servers: 0, ..self.spec };
        let fabric = Fabric::new(spec);
        let mpi = MpiWorld::new(fabric, self.workers + 1);
        let factory = Arc::new(factory);
        let cfg = self.cfg;
        let n = self.workers;
        let report = Arc::new(Mutex::new(TrainingReport::new("Downpour-ASGD", n)));

        let mut sim = Simulation::new();

        // The parameter server (rank 0).
        {
            let factory = Arc::clone(&factory);
            let report = Arc::clone(&report);
            let mut comm = mpi.comm(0);
            sim.spawn("downpour_ps", move |ctx| {
                let ctx = &ctx;
                // The server seeds W from a replica's initial weights.
                let mut seed_trainer = factory.make(0, n.max(1));
                let param_len = seed_trainer.param_len();
                let wire_eff =
                    (seed_trainer.wire_bytes() as f64 / cfg.baseline.mpi_efficiency) as u64;
                let mut weights = vec![0.0f32; param_len];
                seed_trainer.read_weights(&mut weights);
                let mut done = 0usize;
                // The server update is memory-bound; charge a light pass.
                let update_time =
                    SimDuration::from_secs_f64(seed_trainer.wire_bytes() as f64 / 20.0e9);
                // Event loop: serve pulls, fold in pushes as they arrive,
                // count completions. FIFO per sender guarantees a worker's
                // final push is processed before its DONE.
                while done < n {
                    let (src, tag, data) = comm.recv_any(ctx, &[TAG_PULL, TAG_PUSH, TAG_DONE]);
                    match tag {
                        TAG_PULL => {
                            comm.send_wire(
                                ctx,
                                src,
                                TAG_WEIGHTS,
                                MpiData::F32s(weights.clone()),
                                wire_eff,
                            );
                        }
                        TAG_PUSH => {
                            let grads = data.into_f32s();
                            for (w, g) in weights.iter_mut().zip(grads.iter()) {
                                *w -= cfg.ps_lr * g;
                            }
                            ctx.sleep(update_time);
                        }
                        TAG_DONE => done += 1,
                        other => unreachable!("recv_any returned unknown tag {other}"),
                    }
                }
                let mut report = report.lock();
                report.final_weights = Some(weights);
            });
        }

        // The computing workers (ranks 1..=n).
        for worker in 0..n {
            let rank = worker + 1;
            let factory = Arc::clone(&factory);
            let report = Arc::clone(&report);
            let mut comm = mpi.comm(rank);
            sim.spawn(&format!("downpour_w{worker}"), move |ctx| {
                let ctx = &ctx;
                let mut trainer = factory.make(worker, n);
                let param_len = trainer.param_len();
                let wire_eff = (trainer.wire_bytes() as f64 / cfg.baseline.mpi_efficiency) as u64;
                let mut grads = vec![0.0f32; param_len];
                let mut wrep = WorkerReport::new(worker);
                let mut evals = Vec::new();
                let mut loss_ema = f32::NAN;

                for iter in 1..=cfg.max_iters as u64 {
                    // Pull the current global weights.
                    let comm_start = ctx.now();
                    comm.send(ctx, 0, TAG_PULL, MpiData::U64s(vec![iter]));
                    let (_, weights) = comm.recv_f32s(ctx, Some(0), TAG_WEIGHTS);
                    trainer.write_weights(&weights);
                    let pull_time = ctx.now() - comm_start;

                    // Compute a gradient on the local shard.
                    let comp_start = ctx.now();
                    let loss = trainer.compute_gradients(ctx);
                    wrep.comp_ms.record_duration_ms(ctx.now() - comp_start);

                    // Push it (asynchronously applied by the server).
                    let push_start = ctx.now();
                    trainer.read_grads(&mut grads);
                    comm.send_wire(ctx, 0, TAG_PUSH, MpiData::F32s(grads.clone()), wire_eff);
                    wrep.comm_ms.record_duration_ms(pull_time + (ctx.now() - push_start));
                    loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };

                    if worker == 0 && cfg.eval_every > 0 && iter % cfg.eval_every as u64 == 0 {
                        if let Some(sample) = trainer.evaluate() {
                            evals.push(EvalPoint {
                                iter,
                                time: ctx.now(),
                                loss: sample.loss,
                                top1: sample.top1,
                                topk: sample.topk,
                            });
                        }
                    }
                }
                comm.send(ctx, 0, TAG_DONE, MpiData::U64s(vec![1]));

                wrep.iters = cfg.max_iters as u64;
                wrep.finished_at = ctx.now();
                wrep.final_loss = loss_ema;
                let mut report = report.lock();
                report.workers[worker] = wrep;
                if worker == 0 {
                    report.evals = evals;
                }
            });
        }

        let wall = run_sim(sim)?;
        let mut final_report =
            Arc::try_unwrap(report).map(Mutex::into_inner).unwrap_or_else(|arc| arc.lock().clone());
        final_report.wall = wall;
        Ok(final_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ModeledTrainerFactory;
    use shmcaffe_models::WorkloadModel;
    use shmcaffe_simnet::jitter::JitterModel;

    fn factory() -> ModeledTrainerFactory {
        ModeledTrainerFactory::new(
            WorkloadModel::custom("t", 4_000_000, SimDuration::from_millis(20)),
            JitterModel::NONE,
            5,
        )
    }

    #[test]
    fn eight_workers_complete_and_server_collects_weights() {
        let report = DownpourAsgd::new(
            ClusterSpec::paper_testbed(3),
            8,
            DownpourConfig { max_iters: 12, ..Default::default() },
        )
        .run(factory())
        .unwrap();
        assert_eq!(report.workers.len(), 8);
        for w in &report.workers {
            assert_eq!(w.iters, 12);
            assert!(w.comm_ms.mean() > 0.0, "pull/push must cost time");
        }
        let weights = report.final_weights.expect("server records final weights");
        assert!(weights.iter().any(|&v| v != 0.0), "gradients reached the server");
    }

    #[test]
    fn staleness_grows_with_worker_count() {
        // More workers => more updates land between a worker's pull and
        // push => the server weight moves further per worker iteration.
        // Proxy metric: wall time per completed iteration rises with
        // worker count because the single server serialises traffic.
        let per_iter = |workers: usize| -> f64 {
            let report = DownpourAsgd::new(
                ClusterSpec::paper_testbed(5),
                workers,
                DownpourConfig { max_iters: 10, ..Default::default() },
            )
            .run(factory())
            .unwrap();
            report.wall.as_millis_f64() / 10.0
        };
        let two = per_iter(2);
        let sixteen = per_iter(16);
        assert!(sixteen > two, "server contention must grow: {two} vs {sixteen}");
    }

    #[test]
    fn rejects_overfull_cluster() {
        assert!(DownpourAsgd::new(ClusterSpec::paper_testbed(1), 4, DownpourConfig::default())
            .run(factory())
            .is_err());
    }
}
