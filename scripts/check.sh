#!/usr/bin/env bash
# Tier-1 gate: the full workspace test suite plus a zero-warning clippy
# pass. The chaos/fault/failover tests are part of the default profile and
# are sized to keep the whole run fast (the chaos and memory-server
# failover integration tests each complete in well under a second of real
# time).
#
# The suite runs twice — once with SHMCAFFE_THREADS=1 and once with
# SHMCAFFE_THREADS=4 — because the compute backend dispatches onto a
# worker pool and every kernel promises bit-identical results at any
# thread count. A seeded end-to-end training checksum is compared across
# the two settings to catch any schedule-dependent reduction order.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== rustfmt (workspace, check only) =="
cargo fmt --all -- --check

echo "== determinism lint + allowlist audit =="
cargo run -q -p shmcaffe-analysis

echo "== analysis self-check (lexer + rule fixtures, workspace clean) =="
cargo test -q -p shmcaffe-analysis

echo "== tier-1 suite, SHMCAFFE_THREADS=1 =="
SHMCAFFE_THREADS=1 cargo test -q --workspace

echo "== tier-1 suite, SHMCAFFE_THREADS=4 =="
SHMCAFFE_THREADS=4 cargo test -q --workspace

echo "== seeded training checksum, 1 vs 4 threads =="
cargo build -q --release -p shmcaffe-bench --bin kernel_bench
sum1=$(SHMCAFFE_THREADS=1 ./target/release/kernel_bench --checksum)
sum4=$(SHMCAFFE_THREADS=4 ./target/release/kernel_bench --checksum)
echo "  1 thread : $sum1"
echo "  4 threads: $sum4"
if [ "$sum1" != "$sum4" ]; then
    echo "FAIL: training checksum differs across thread counts" >&2
    exit 1
fi

echo "== fused conv: bit-identity proptests + zero-alloc steady state =="
cargo test -q -p shmcaffe-tensor --test fused_conv
cargo test -q -p shmcaffe-tensor --test alloc_free

echo "== kernel-bench smoke: fused conv must not regress (host-aware floor) =="
./target/release/kernel_bench --smoke

echo "== chunked exchange bit-identity: mono vs chunked x 1 vs 4 threads =="
cargo build -q --release -p shmcaffe-bench --bin exchange_bench
ex_m1=$(SHMCAFFE_THREADS=1 ./target/release/exchange_bench --checksum mono)
ex_m4=$(SHMCAFFE_THREADS=4 ./target/release/exchange_bench --checksum mono)
ex_c1=$(SHMCAFFE_THREADS=1 ./target/release/exchange_bench --checksum chunked)
ex_c4=$(SHMCAFFE_THREADS=4 ./target/release/exchange_bench --checksum chunked)
echo "  mono    1/4 threads: $ex_m1 / $ex_m4"
echo "  chunked 1/4 threads: $ex_c1 / $ex_c4"
if [ "$ex_m1" != "$ex_c1" ] || [ "$ex_m1" != "$ex_m4" ] || [ "$ex_m1" != "$ex_c4" ]; then
    echo "FAIL: chunked exchange checksum diverges from monolithic" >&2
    exit 1
fi

echo "== chunked exchange equivalence (proptest over chunk sizes) =="
cargo test -q -p shmcaffe --test exchange_equivalence

echo "== partition tolerance: split-brain chaos + fencing/replica suites =="
cargo test -q -p shmcaffe --test partition
cargo test -q -p shmcaffe-smb --lib -- promotion fenced partition reconcile

echo "== data integrity: CRC-grid proptests + repair/scrub suites + corruption chaos =="
cargo test -q -p shmcaffe-smb --test integrity_proptests
cargo test -q -p shmcaffe-smb --test integrity
cargo test -q -p shmcaffe --test chaos -- corrupt

echo "== schedcheck: bounded DPOR exploration + seeded-mutation harness =="
# Every suite carries its own schedule budget (ExploreBounds); the timeout
# is a wall-clock backstop so a pruning regression fails the gate instead
# of hanging it.
timeout 300 cargo test -q -p shmcaffe-simnet --test schedcheck
timeout 300 cargo test -q -p shmcaffe-smb --test schedcheck
timeout 300 cargo test -q -p shmcaffe --test schedcheck_seasgd

echo "== race detector: SMB seeded-race/failover/fence-chain/repair + SEASGD chaos/failover/partition =="
cargo test -q -p shmcaffe-smb --features race-detect
cargo test -q -p shmcaffe --features race-detect
cargo test -q -p shmcaffe-simnet --features race-detect
cargo test -q -p shmcaffe --features race-detect --test partition
cargo test -q -p shmcaffe-smb --features race-detect --test race_detect

echo "== miri (skips when not installed) =="
./scripts/miri.sh

echo "== clippy (workspace, deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings
echo "== clippy (bench crate incl. bins, deny warnings) =="
cargo clippy -p shmcaffe-bench --all-targets -- -D warnings

echo "check.sh: all gates passed"
