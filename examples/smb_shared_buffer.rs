//! Using the Soft Memory Box directly — no deep learning involved.
//!
//! SMB is a general remote shared-memory facility (paper §III-B): this
//! example runs a distributed *mean estimation*: eight processes on two
//! nodes each hold a private sample vector and cooperatively compute the
//! global mean in a shared buffer using only SMB primitives (create /
//! key broadcast / alloc / write / accumulate / read), following the
//! handshake of Fig. 2.
//!
//! Run with `cargo run --release --example smb_shared_buffer`.

use shmcaffe_repro::rdma::RdmaFabric;
use shmcaffe_repro::simnet::channel::SimChannel;
use shmcaffe_repro::simnet::topology::{ClusterSpec, Fabric, NodeId};
use shmcaffe_repro::simnet::Simulation;
use shmcaffe_repro::smb::{ShmKey, SmbClient, SmbServer};

const DIM: usize = 16;
const PROCS: usize = 8;

fn main() {
    let fabric = Fabric::new(ClusterSpec::paper_testbed(2));
    let rdma = RdmaFabric::new(fabric);
    let server = SmbServer::new(rdma).expect("testbed has a memory server");
    let key_bcast: SimChannel<ShmKey> = SimChannel::new("key_bcast");
    let done: SimChannel<()> = SimChannel::new("done");

    let mut sim = Simulation::new();
    for rank in 0..PROCS {
        let server = server.clone();
        let key_bcast = key_bcast.clone();
        let done = done.clone();
        let node = NodeId(rank / 4);
        sim.spawn(&format!("proc{rank}"), move |ctx| {
            let client = SmbClient::new(server, node);

            // Master creates the accumulator segment and broadcasts the key.
            let sum_key = if rank == 0 {
                let key = client.create(&ctx, "global_sum", DIM, None).expect("fresh server");
                for _ in 1..PROCS {
                    key_bcast.send(&ctx, key);
                }
                key
            } else {
                key_bcast.recv(&ctx)
            };
            let sum_buf = client.alloc(&ctx, sum_key).expect("master created it");

            // Each process contributes its private vector through its own
            // staging segment + a server-side accumulate (never read by
            // anyone else — the Fig. 5 buffer layout).
            let mine: Vec<f32> = (0..DIM).map(|i| (rank * DIM + i) as f32).collect();
            let stage_key =
                client.create(&ctx, &format!("stage_{rank}"), DIM, None).expect("unique name");
            let stage = client.alloc(&ctx, stage_key).expect("just created");
            client.write(&ctx, &stage, &mine).expect("sizes match");
            client.accumulate(&ctx, &stage, &sum_buf).expect("same length");

            if rank == 0 {
                // Wait for everyone, then read the accumulated sum.
                for _ in 1..PROCS {
                    done.recv(&ctx);
                }
                let mut sum = vec![0.0f32; DIM];
                client.read(&ctx, &sum_buf, &mut sum).expect("sizes match");
                let mean: Vec<f32> = sum.iter().map(|v| v / PROCS as f32).collect();
                println!("global mean over {PROCS} processes: {mean:?}");
                // Verify against the closed form.
                for (i, &m) in mean.iter().enumerate() {
                    let expected: f32 =
                        (0..PROCS).map(|r| (r * DIM + i) as f32).sum::<f32>() / PROCS as f32;
                    assert!((m - expected).abs() < 1e-3, "component {i}: {m} vs {expected}");
                }
                println!("matches the closed-form mean ✓ (virtual time {})", ctx.now());
            } else {
                done.send(&ctx, ());
            }
        });
    }
    let end = sim.run();
    println!("simulation finished at {end}");
}
