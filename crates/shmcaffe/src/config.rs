//! Platform configuration: ShmCaffe's two extra hyper-parameters plus
//! simulation knobs.

use serde::{Deserialize, Serialize};
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::SimDuration;

use crate::termination::TerminationPolicy;

/// Configuration of a ShmCaffe run.
///
/// "ShmCaffe supports all hyper-parameters supported by Caffe and
/// additionally supports two hyper-parameters: `update_interval` and
/// `moving_rate`" (paper §III-A). The solver hyper-parameters live in
/// [`shmcaffe_dnn::SolverConfig`]; this struct carries the distributed ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShmCaffeConfig {
    /// Moving averaging rate α used in the elastic updates (eqs. 3–7).
    /// The paper's experiments use 0.2.
    pub moving_rate: f32,
    /// How frequently (in iterations) to exchange with the global buffer.
    /// The paper's experiments use 1.
    pub update_interval: usize,
    /// Local training iterations per worker (before termination alignment).
    pub max_iters: usize,
    /// Termination-alignment criterion (§III-E).
    pub termination: TerminationPolicy,
    /// Iterations between progress-board publishes/checks.
    pub progress_every: usize,
    /// Evaluate (convergence runs) every this many iterations on rank 0;
    /// `0` disables evaluation.
    pub eval_every: usize,
    /// Compute-time jitter model (stragglers).
    pub jitter: JitterModel,
    /// Base RNG seed; every worker derives its own stream from it.
    pub seed: u64,
    /// Throughput of the worker-local weight-mixing pass (T2/T5 memory
    /// traffic over W_x, W_g, ΔW), in bytes/s. GDDR5X copy throughput.
    pub local_mix_bps: f64,
    /// Ablation switch: overlap the global-weight read with computation.
    /// The paper deliberately does **not** hide this read "because the
    /// learning performance deteriorates due to the delayed (or stale)
    /// parameter problem" (§III-G); enabling this reproduces that
    /// trade-off.
    pub hide_global_read: bool,
    /// Iterations between center-variable checkpoints written by the
    /// master into the replicated checkpoint segment (`0` disables
    /// checkpointing). A checkpoint is what a crashed worker rejoins from
    /// and what survives a memory-server failover.
    #[serde(default)]
    pub checkpoint_every: usize,
    /// How long after its crash a dead worker attempts to rejoin from the
    /// latest checkpoint (`None` = crashed workers stay dead). Rejoin
    /// also requires `checkpoint_every > 0`.
    #[serde(default)]
    pub rejoin_delay: Option<SimDuration>,
    /// Degraded-mode staleness cap: how many weight increments a worker
    /// cut off from the memory server by a network partition may buffer
    /// for replay after the partition heals. Increments beyond the cap
    /// are dropped with accounting (elastic averaging re-derives the lost
    /// force from the next `W_x − W_g` difference). `0` disables
    /// partition buffering — a failed push is simply dropped.
    #[serde(default = "default_partition_staleness_cap")]
    pub partition_staleness_cap: usize,
    /// Run the exchange as a pipelined chunk stream: the `W_g` range-read
    /// for chunk *k+1* is in flight while chunk *k* mixes, and each
    /// finished ΔW chunk is pushed (range write + range accumulate)
    /// immediately, overlapping with the remaining mixing and with
    /// compute. Off = the original monolithic read→mix→push exchange.
    /// Both paths produce bit-identical weights (the chunk grid is fixed
    /// and the mixing is elementwise).
    #[serde(default = "default_pipelined_exchange")]
    pub pipelined_exchange: bool,
    /// Chunk size of the pipelined exchange, in f32 elements. `0` = auto:
    /// size the grid so [`DEFAULT_EXCHANGE_CHUNKS`] chunks cover the
    /// model. The grid is derived only from `param_len` and this knob —
    /// never from timing — so it is part of the deterministic contract.
    #[serde(default)]
    pub exchange_chunk_elems: usize,
}

fn default_partition_staleness_cap() -> usize {
    16
}

fn default_pipelined_exchange() -> bool {
    true
}

/// Number of chunks the auto grid (`exchange_chunk_elems == 0`) targets —
/// in the paper's ~8–32 sweet spot: enough chunks to overlap read, mix and
/// push, few enough that per-chunk control latency stays negligible.
pub const DEFAULT_EXCHANGE_CHUNKS: usize = 16;

impl Default for ShmCaffeConfig {
    fn default() -> Self {
        ShmCaffeConfig {
            moving_rate: 0.2,
            update_interval: 1,
            max_iters: 100,
            termination: TerminationPolicy::FixedIterations,
            progress_every: 10,
            eval_every: 0,
            jitter: JitterModel::hpc_default(),
            seed: 42,
            local_mix_bps: 25.0e9,
            hide_global_read: false,
            checkpoint_every: 0,
            rejoin_delay: None,
            partition_staleness_cap: default_partition_staleness_cap(),
            pipelined_exchange: default_pipelined_exchange(),
            exchange_chunk_elems: 0,
        }
    }
}

impl ShmCaffeConfig {
    /// Validates invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.moving_rate) {
            return Err(format!("moving_rate {} outside [0, 1]", self.moving_rate));
        }
        if self.update_interval == 0 {
            return Err("update_interval must be at least 1".to_string());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be at least 1".to_string());
        }
        if self.progress_every == 0 {
            return Err("progress_every must be at least 1".to_string());
        }
        if self.local_mix_bps <= 0.0 || self.local_mix_bps.is_nan() {
            return Err("local_mix_bps must be positive".to_string());
        }
        if self.rejoin_delay.is_some() && self.checkpoint_every == 0 {
            return Err("rejoin_delay requires checkpoint_every > 0".to_string());
        }
        Ok(())
    }
}

/// Baseline-platform calibration constants (see DESIGN.md §1 and
/// EXPERIMENTS.md for provenance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Effective MPI point-to-point bandwidth as a fraction of the RDMA
    /// wire rate. Models the "additional memory copying and protocol
    /// processing in the existing communication methods" that ShmCaffe
    /// eliminates (paper §V). 0.25 ≈ 1.75 GB/s effective on the 7 GB/s
    /// FDR HCA, consistent with Caffe-MPI v1.0's per-layer blocking
    /// send/recv exchanges (and with the paper's 2.8× end-to-end and 5.3×
    /// communication-time gaps at 16 GPUs).
    pub mpi_efficiency: f64,
    /// BVLC Caffe single-process host overhead per GPU per iteration,
    /// base milliseconds. Fitted to the paper's Caffe scalability
    /// (2.7× at 8 GPUs, 2.3× at 16 — scaling *degrades*).
    pub caffe_host_ms_base: f64,
    /// BVLC Caffe host overhead slope: extra milliseconds per GPU of
    /// fan-out (the quadratic term of the single-process bottleneck).
    pub caffe_host_ms_per_gpu: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            mpi_efficiency: 0.25,
            caffe_host_ms_base: 28.0,
            caffe_host_ms_per_gpu: 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = ShmCaffeConfig::default();
        assert_eq!(c.moving_rate, 0.2);
        assert_eq!(c.update_interval, 1);
        assert!(c.pipelined_exchange, "chunked pipeline is the default path");
        assert_eq!(c.exchange_chunk_elems, 0, "auto chunk grid by default");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = ShmCaffeConfig::default();
        assert!(ShmCaffeConfig { moving_rate: 1.5, ..base }.validate().is_err());
        assert!(ShmCaffeConfig { update_interval: 0, ..base }.validate().is_err());
        assert!(ShmCaffeConfig { max_iters: 0, ..base }.validate().is_err());
        assert!(ShmCaffeConfig { progress_every: 0, ..base }.validate().is_err());
        assert!(ShmCaffeConfig { local_mix_bps: 0.0, ..base }.validate().is_err());
        assert!(ShmCaffeConfig {
            rejoin_delay: Some(SimDuration::from_millis(1)),
            checkpoint_every: 0,
            ..base
        }
        .validate()
        .is_err());
    }
}
