//! The classic Caffe workflow end to end, on this reproduction's
//! substrate:
//!
//! 1. define the network from a text spec (the prototxt stand-in),
//! 2. convert the dataset into the LMDB-like record store,
//! 3. train with a background prefetcher feeding minibatches
//!    (the paper prefetches 10),
//! 4. snapshot mid-training and resume bit-identically — Caffe's
//!    `--snapshot` behaviour.
//!
//! Run with `cargo run --release --example caffe_workflow`.

use shmcaffe_repro::dnn::data::{Dataset, SyntheticImages};
use shmcaffe_repro::dnn::netspec::build_net;
use shmcaffe_repro::dnn::recorddb::{Prefetcher, RecordDb, RecordDbDataset};
use shmcaffe_repro::dnn::{LrPolicy, Phase, Solver, SolverConfig};

fn main() {
    // 1. Network from a spec string.
    let spec = "conv 8 3x3 pad 1; relu; lrn; pool 2; conv 16 3x3 pad 1; relu; pool 2; fc 64; relu; dropout 0.3; fc 3";
    let net = build_net("spec_cnn", (1, 12, 12), spec, 11).expect("valid spec");
    println!("built `{spec}`");

    // 2. Dataset -> record store (the LMDB analogue).
    let source = SyntheticImages::new(3, 1, 12, 600, 0.08, 21);
    let db = RecordDb::from_dataset(&source).expect("conversion succeeds");
    println!(
        "record store: {} records, {:.1} KB serialised",
        db.len(),
        db.byte_size() as f64 / 1e3
    );

    // 3. Train with a prefetch depth of 10 (paper §IV-C).
    let mut solver = Solver::new(
        net,
        SolverConfig {
            base_lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0005,
            policy: LrPolicy::Step { gamma: 0.1, step_size: 120 },
            clip_gradients: Some(5.0),
        },
    );
    let batches = 150usize;
    let pf = Prefetcher::spawn(db.clone(), db.keys(), 30, 10, batches);
    let mut snapshot = None;
    for i in 0..batches {
        let mb = pf.next_batch().expect("prefetcher delivers all batches");
        let loss = solver.step(&mb.features, &mb.labels).expect("shapes match");
        if i % 30 == 0 {
            println!("iter {i:>3}: loss {loss:.3} (queue depth {})", pf.queued());
        }
        if i == 74 {
            snapshot = Some(solver.snapshot().expect("snapshot"));
            println!("captured snapshot at iteration 75");
        }
    }

    // 4. Evaluate, then demonstrate snapshot resume.
    let eval_view = RecordDbDataset::new(db).expect("non-empty db");
    let result =
        shmcaffe_repro::dnn::metrics::evaluate(solver.net_mut(), &eval_view, 50, 2).expect("eval");
    println!("trained: {result}");
    assert!(result.top1 > 0.8, "workflow should learn the task");

    let snap = snapshot.expect("captured");
    let resumed_net = build_net("spec_cnn", (1, 12, 12), spec, 999).expect("valid spec");
    let mut resumed = Solver::new(
        resumed_net,
        SolverConfig {
            base_lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.0005,
            policy: LrPolicy::Step { gamma: 0.1, step_size: 120 },
            clip_gradients: Some(5.0),
        },
    );
    resumed.restore(&snap).expect("snapshot fits");
    println!("restored snapshot: resuming at iteration {}", resumed.iter());
    let idx: Vec<usize> = (0..30).collect();
    let (x, y) = eval_view.minibatch(&idx).expect("indices in range");
    let (loss, _) = resumed.net_mut().forward_loss(&x, &y, Phase::Test).expect("shapes match");
    println!("restored model loss on first batch: {loss:.3}");
}
