//! Max/average pooling layer.

use shmcaffe_tensor::conv::Conv2dGeometry;
use shmcaffe_tensor::pool::{pool_backward, pool_forward, PoolKind};
use shmcaffe_tensor::Tensor;

use crate::{DnnError, Layer, Phase};

/// A 2-D pooling layer (max or average), applied per channel.
///
/// Input `(N, C, H, W)` → output `(N, C, H_out, W_out)`.
#[derive(Debug)]
pub struct Pool2d {
    name: String,
    kind: PoolKind,
    geom: Conv2dGeometry,
    out_h: usize,
    out_w: usize,
    batch: usize,
    argmax: Vec<usize>,
}

impl Pool2d {
    /// Creates a pooling layer. `geom.in_channels` is the channel count.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry does not produce a valid output.
    pub fn new(name: &str, kind: PoolKind, geom: Conv2dGeometry) -> Result<Self, DnnError> {
        let out_h = geom.out_h()?;
        let out_w = geom.out_w()?;
        Ok(Pool2d {
            name: name.to_string(),
            kind,
            geom,
            out_h,
            out_w,
            batch: 0,
            argmax: Vec::new(),
        })
    }

    /// Convenience constructor for the common `max(kernel, stride)` pattern.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry does not produce a valid output.
    pub fn max_square(
        name: &str,
        channels: usize,
        in_hw: usize,
        kernel: usize,
        stride: usize,
    ) -> Result<Self, DnnError> {
        Self::new(name, PoolKind::Max, Conv2dGeometry::square(channels, in_hw, kernel, stride, 0))
    }
}

impl Layer for Pool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, _phase: Phase) -> Result<Tensor, DnnError> {
        let dims = input.dims();
        if dims.len() != 4
            || dims[1] != self.geom.in_channels
            || dims[2] != self.geom.in_h
            || dims[3] != self.geom.in_w
        {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!(
                    "expected (N, {}, {}, {}), got {:?}",
                    self.geom.in_channels, self.geom.in_h, self.geom.in_w, dims
                ),
            });
        }
        let batch = dims[0];
        self.batch = batch;
        let mut output = Tensor::zeros(&[batch, self.geom.in_channels, self.out_h, self.out_w]);
        if self.kind == PoolKind::Max {
            // Reuse the argmax buffer across iterations; steady-state
            // forward passes with a stable batch size allocate nothing.
            if self.argmax.len() != output.len() {
                self.argmax.resize(output.len(), 0);
            }
            pool_forward(
                self.kind,
                &self.geom,
                batch,
                input.data(),
                output.data_mut(),
                &mut self.argmax,
            );
        } else {
            pool_forward(self.kind, &self.geom, batch, input.data(), output.data_mut(), &mut []);
        }
        Ok(output)
    }

    fn backward(&mut self, d_output: &Tensor) -> Result<Tensor, DnnError> {
        if self.batch == 0 {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: "backward called before forward".to_string(),
            });
        }
        let expected = self.batch * self.geom.in_channels * self.out_h * self.out_w;
        if d_output.len() != expected {
            return Err(DnnError::BadInput {
                layer: self.name.clone(),
                message: format!("d_output length {} != {expected}", d_output.len()),
            });
        }
        let mut d_input =
            Tensor::zeros(&[self.batch, self.geom.in_channels, self.geom.in_h, self.geom.in_w]);
        pool_backward(
            self.kind,
            &self.geom,
            self.batch,
            d_output.data(),
            &self.argmax,
            d_input.data_mut(),
        );
        Ok(d_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_roundtrip() {
        let mut p = Pool2d::max_square("p", 1, 4, 2, 2).unwrap();
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = p.forward(&x, Phase::Train).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
        let dx = p.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn average_pool() {
        let geom = Conv2dGeometry::square(1, 2, 2, 2, 0);
        let mut p = Pool2d::new("p", PoolKind::Average, geom).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = p.forward(&x, Phase::Test).unwrap();
        assert_eq!(y.data(), &[2.5]);
        let dx = p.backward(&Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn shape_validation() {
        let mut p = Pool2d::max_square("p", 2, 4, 2, 2).unwrap();
        assert!(p.forward(&Tensor::zeros(&[1, 1, 4, 4]), Phase::Train).is_err());
        assert!(p.backward(&Tensor::zeros(&[1, 2, 2, 2])).is_err());
    }
}
