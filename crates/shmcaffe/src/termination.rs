//! Termination alignment (paper §III-E).
//!
//! "BVLC Caffe terminates training by specifying the number of iterations
//! ... All workers that have completed the specified training iterations
//! must wait for the slowest worker to finish its training while occupying
//! GPU." ShmCaffe shares progress through the SMB control-info buffer and
//! stops workers early by one of three predefined criteria:
//!
//! 1. all workers finish when the **master** worker terminates,
//! 2. all workers finish when the **first** worker finishes,
//! 3. all workers finish when the **average** iteration count reaches the
//!    specified number of iterations.

use serde::{Deserialize, Serialize};
use shmcaffe_smb::progress::ProgressSnapshot;

/// When a worker should stop relative to the fleet's shared progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TerminationPolicy {
    /// No alignment: every worker runs its full iteration budget (the BVLC
    /// Caffe behaviour the paper criticises — finished workers idle-wait).
    FixedIterations,
    /// Criterion 1: stop everyone once the master (rank 0) is done.
    MasterFinished,
    /// Criterion 2: stop everyone as soon as any worker is done.
    FirstFinisher,
    /// Criterion 3: stop everyone once the mean iteration count reaches
    /// the target.
    AverageIterations,
}

impl TerminationPolicy {
    /// Decides whether a worker that has completed `my_iters` of
    /// `target_iters` should stop now, given the latest board snapshot.
    ///
    /// The first three policies stop a worker at its own budget at the
    /// latest (and possibly earlier). Criterion 3 is different: fast
    /// workers keep training *past* their budget until the fleet's mean
    /// iteration count reaches the target, so slow workers' shortfall is
    /// compensated rather than waited out.
    pub fn should_stop(
        self,
        snapshot: &ProgressSnapshot,
        my_iters: u64,
        target_iters: u64,
    ) -> bool {
        match self {
            TerminationPolicy::FixedIterations => my_iters >= target_iters,
            TerminationPolicy::MasterFinished => my_iters >= target_iters || snapshot.is_done(0),
            TerminationPolicy::FirstFinisher => my_iters >= target_iters || snapshot.any_done(),
            TerminationPolicy::AverageIterations => {
                snapshot.mean_iterations() >= target_iters as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shmcaffe_smb::progress::WorkerProgress;

    fn snap(iters: &[(u64, bool)]) -> ProgressSnapshot {
        ProgressSnapshot {
            workers: iters
                .iter()
                .map(|&(iterations, done)| WorkerProgress { iterations, done })
                .collect(),
        }
    }

    #[test]
    fn own_budget_stops_all_but_average() {
        let s = snap(&[(0, false), (0, false)]);
        for p in [
            TerminationPolicy::FixedIterations,
            TerminationPolicy::MasterFinished,
            TerminationPolicy::FirstFinisher,
        ] {
            assert!(p.should_stop(&s, 100, 100));
            assert!(p.should_stop(&s, 150, 100));
        }
        // Criterion 3: even a worker past its budget keeps going while the
        // fleet mean lags (the snapshot above says everyone is at 0).
        assert!(!TerminationPolicy::AverageIterations.should_stop(&s, 150, 100));
    }

    #[test]
    fn average_lets_fast_workers_compensate() {
        // Mean = (150 + 60) / 2 = 105 >= 100: both stop, including the
        // overshooting fast worker.
        let s = snap(&[(150, false), (60, false)]);
        assert!(TerminationPolicy::AverageIterations.should_stop(&s, 150, 100));
        assert!(TerminationPolicy::AverageIterations.should_stop(&s, 60, 100));
    }

    #[test]
    fn fixed_never_stops_early() {
        let s = snap(&[(100, true), (5, false)]);
        assert!(!TerminationPolicy::FixedIterations.should_stop(&s, 5, 100));
    }

    #[test]
    fn master_finished_stops_slaves() {
        let done = snap(&[(100, true), (60, false)]);
        let not_done = snap(&[(90, false), (60, false)]);
        assert!(TerminationPolicy::MasterFinished.should_stop(&done, 60, 100));
        assert!(!TerminationPolicy::MasterFinished.should_stop(&not_done, 60, 100));
        // A non-master finishing does not trigger it.
        let slave_done = snap(&[(90, false), (100, true)]);
        assert!(!TerminationPolicy::MasterFinished.should_stop(&slave_done, 60, 100));
    }

    #[test]
    fn first_finisher_stops_on_any_done() {
        let s = snap(&[(90, false), (100, true), (10, false)]);
        assert!(TerminationPolicy::FirstFinisher.should_stop(&s, 10, 100));
        let none = snap(&[(90, false), (99, false)]);
        assert!(!TerminationPolicy::FirstFinisher.should_stop(&none, 10, 100));
    }

    #[test]
    fn average_iterations_uses_mean() {
        // Mean = (120 + 90 + 90) / 3 = 100.
        let s = snap(&[(120, false), (90, false), (90, false)]);
        assert!(TerminationPolicy::AverageIterations.should_stop(&s, 90, 100));
        let s2 = snap(&[(120, false), (80, false), (90, false)]);
        assert!(!TerminationPolicy::AverageIterations.should_stop(&s2, 90, 100));
    }
}
