//! The Soft Memory Box (SMB): a remote shared-memory buffer framework.
//!
//! SMB (paper §III-B, reference \[23\]) lets distributed processes allocate shared
//! buffers in a memory server's RAM and access them over RDMA. It provides
//! exactly the API surface the paper lists: control messages for remote
//! shared memory **allocation/deallocation**, **RDMA read/write** to an
//! assigned buffer, **accumulation between shared memory segments** and
//! **update notification**.
//!
//! The sharing handshake follows Fig. 2 of the paper:
//!
//! 1. the master worker creates a shared buffer on the SMB server and
//!    receives the *SHM key*,
//! 2. the master broadcasts the SHM key to the other workers (via MPI),
//! 3. each worker sends an allocation request with the SHM key and receives
//!    the *access key* — the InfiniBand rkey granting direct RDMA access.
//!
//! Unlike a parameter server, the SMB server has **no update logic**: it
//! offers buffers plus a simple accumulate between segments (§III-C), which
//! is why ShmCaffe's SEASGD writes weight *increments* and asks the server
//! to fold them into the global buffer (eq. 7).
//!
//! # Example
//!
//! ```rust
//! use shmcaffe_simnet::{Simulation, topology::{ClusterSpec, Fabric, NodeId}};
//! use shmcaffe_rdma::RdmaFabric;
//! use shmcaffe_smb::{SmbServer, SmbClient};
//!
//! let rdma = RdmaFabric::new(Fabric::new(ClusterSpec::paper_testbed(1)));
//! let server = SmbServer::new(rdma.clone()).unwrap();
//! let mut sim = Simulation::new();
//! let s = server.clone();
//! sim.spawn("master", move |ctx| {
//!     let client = SmbClient::new(s, NodeId(0));
//!     let key = client.create(&ctx, "global_weights", 8, None).unwrap();
//!     let buf = client.alloc(&ctx, key).unwrap();
//!     client.write(&ctx, &buf, &[1.0; 8]).unwrap();
//!     let mut out = [0.0f32; 8];
//!     client.read(&ctx, &buf, &mut out).unwrap();
//!     assert_eq!(out, [1.0; 8]);
//! });
//! sim.run();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod crc;
mod error;
pub mod progress;
mod replica;
mod retry;
mod server;
pub mod sharded;

/// Tags the raw RDMA op inside `$e` with a race-detector access kind and a
/// client-level site name, overriding the generic classification the rdma
/// crate would record. Compiles to `$e` when race detection is off.
macro_rules! tag_access {
    ($kind:ident, $site:literal, $e:expr) => {{
        #[cfg(feature = "race-detect")]
        {
            shmcaffe_simnet::race::with_access(
                shmcaffe_simnet::race::AccessKind::$kind,
                $site,
                || $e,
            )
        }
        #[cfg(not(feature = "race-detect"))]
        {
            $e
        }
    }};
}
pub(crate) use tag_access;

pub use client::{ClientFaultStats, SmbBuffer, SmbClient};
pub use error::SmbError;
pub use replica::{ServerRole, SmbPair};
pub use retry::RetryPolicy;
pub use server::{ShmKey, SmbServer, SmbServerConfig};
pub use sharded::{ShardedBuffer, ShardedClient, ShardedKey, SmbCluster};
