//! Facade crate for the ShmCaffe reproduction workspace.
//!
//! Re-exports every sub-crate under a single name so that the runnable
//! examples in `examples/` and the cross-crate integration tests in `tests/`
//! can use one coherent namespace.
//!
//! The actual implementation lives in the `crates/` workspace members:
//!
//! * [`tensor`] — dense f32 tensor algebra (gemm, conv, pooling, activations)
//! * [`dnn`] — Caffe-like layers, nets, the SGD solver and datasets
//! * [`simnet`] — deterministic virtual-time cluster fabric simulator
//! * [`rdma`] — verbs-style RDMA layer (memory regions, queue pairs)
//! * [`smb`] — the Soft Memory Box remote shared-memory framework
//! * [`mpi`] — in-process MPI-like message passing substrate
//! * [`collectives`] — NCCL-like ring allreduce / broadcast collectives
//! * [`models`] — CNN model zoo descriptors and trainable proxy networks
//! * [`platform`] — the ShmCaffe platform itself (SEASGD, HSGD, baselines)

#![forbid(unsafe_code)]

pub use shmcaffe as platform;
pub use shmcaffe_collectives as collectives;
pub use shmcaffe_dnn as dnn;
pub use shmcaffe_models as models;
pub use shmcaffe_mpi as mpi;
pub use shmcaffe_rdma as rdma;
pub use shmcaffe_simnet as simnet;
pub use shmcaffe_smb as smb;
pub use shmcaffe_tensor as tensor;
