//! Compute-time jitter models.
//!
//! The paper (§III-E) observes that workers deviate in per-iteration compute
//! time because they share the system bus, filesystem I/O and network
//! bandwidth — the reason SSGD pays a straggler penalty that asynchronous
//! SEASGD avoids. [`JitterModel`] reproduces this with a lognormal
//! multiplicative factor plus an occasional heavy-tail "interference" stall.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::SimDuration;

/// Parameters of the per-iteration compute-time distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Standard deviation of the lognormal factor's underlying normal.
    /// `0.0` disables jitter entirely.
    pub sigma: f64,
    /// Probability of an interference stall on any given iteration.
    pub stall_probability: f64,
    /// Stall duration as a fraction of the base compute time.
    pub stall_factor: f64,
}

impl JitterModel {
    /// No jitter: every iteration takes exactly the base time.
    pub const NONE: JitterModel =
        JitterModel { sigma: 0.0, stall_probability: 0.0, stall_factor: 0.0 };

    /// The default used for the paper's GPU servers: ~5 % lognormal spread
    /// with a 2 % chance of a 50 % stall (shared bus / NFS interference).
    pub fn hpc_default() -> Self {
        JitterModel { sigma: 0.05, stall_probability: 0.02, stall_factor: 0.5 }
    }

    /// Creates a pure lognormal model with the given sigma.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn lognormal(sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "sigma must be non-negative");
        JitterModel { sigma, stall_probability: 0.0, stall_factor: 0.0 }
    }
}

/// A seeded sampler producing jittered compute durations.
///
/// # Example
///
/// ```rust
/// use shmcaffe_simnet::jitter::{JitterModel, JitterSampler};
/// use shmcaffe_simnet::SimDuration;
///
/// let base = SimDuration::from_millis(257); // Inception_v1 per-iteration time
/// let mut a = JitterSampler::new(JitterModel::hpc_default(), 42);
/// let mut b = JitterSampler::new(JitterModel::hpc_default(), 42);
/// assert_eq!(a.sample(base), b.sample(base)); // deterministic per seed
/// ```
#[derive(Debug, Clone)]
pub struct JitterSampler {
    model: JitterModel,
    rng: ChaCha8Rng,
}

impl JitterSampler {
    /// Creates a sampler with a deterministic seed.
    pub fn new(model: JitterModel, seed: u64) -> Self {
        JitterSampler { model, rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Samples one jittered duration around `base`.
    pub fn sample(&mut self, base: SimDuration) -> SimDuration {
        // Always consume the same number of random draws regardless of the
        // model, so samplers with different models stay comparable per seed.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let stall_draw: f64 = self.rng.gen_range(0.0..1.0);

        if self.model.sigma == 0.0 && self.model.stall_probability == 0.0 {
            return base;
        }
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let factor = (self.model.sigma * z).exp();
        let mut dur = base.mul_f64(factor);
        if stall_draw < self.model.stall_probability {
            dur += base.mul_f64(self.model.stall_factor);
        }
        dur
    }

    /// The model this sampler draws from.
    pub fn model(&self) -> JitterModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_is_exact() {
        let mut s = JitterSampler::new(JitterModel::NONE, 1);
        let base = SimDuration::from_millis(100);
        for _ in 0..10 {
            assert_eq!(s.sample(base), base);
        }
    }

    #[test]
    fn lognormal_mean_is_close_to_base() {
        let mut s = JitterSampler::new(JitterModel::lognormal(0.05), 7);
        let base = SimDuration::from_millis(100);
        let n = 5000;
        let total: f64 = (0..n).map(|_| s.sample(base).as_millis_f64()).sum();
        let mean = total / n as f64;
        // Lognormal mean = exp(sigma^2/2) ~ 1.00125 for sigma=0.05.
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn stalls_increase_mean() {
        let base = SimDuration::from_millis(100);
        let sample_mean = |model: JitterModel| {
            let mut s = JitterSampler::new(model, 3);
            let total: f64 = (0..5000).map(|_| s.sample(base).as_millis_f64()).sum();
            total / 5000.0
        };
        let no_stall = sample_mean(JitterModel::lognormal(0.05));
        let with_stall = sample_mean(JitterModel {
            stall_probability: 0.1,
            stall_factor: 1.0,
            ..JitterModel::lognormal(0.05)
        });
        // 10% chance of +100% => ~+10% mean.
        assert!(with_stall > no_stall + 8.0, "{with_stall} vs {no_stall}");
    }

    #[test]
    fn deterministic_per_seed() {
        let base = SimDuration::from_millis(257);
        let seq = |seed: u64| -> Vec<u64> {
            let mut s = JitterSampler::new(JitterModel::hpc_default(), seed);
            (0..20).map(|_| s.sample(base).as_nanos()).collect()
        };
        assert_eq!(seq(11), seq(11));
        assert_ne!(seq(11), seq(12));
    }

    #[test]
    fn max_of_n_exceeds_mean_of_n() {
        // The straggler effect: expected max of N draws grows with N.
        let base = SimDuration::from_millis(100);
        let mut s = JitterSampler::new(JitterModel::lognormal(0.1), 5);
        let mut max_sum = 0.0;
        let mut mean_sum = 0.0;
        for _ in 0..200 {
            let draws: Vec<f64> = (0..16).map(|_| s.sample(base).as_millis_f64()).collect();
            max_sum += draws.iter().cloned().fold(0.0, f64::max);
            mean_sum += draws.iter().sum::<f64>() / draws.len() as f64;
        }
        assert!(max_sum / 200.0 > mean_sum / 200.0 * 1.05);
    }
}
