use std::fmt;

use shmcaffe_tensor::TensorError;

/// Errors produced by the DNN substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DnnError {
    /// A tensor-level failure (shape/length mismatch).
    Tensor(TensorError),
    /// The input shape does not match what a layer expects.
    BadInput {
        /// Layer reporting the problem.
        layer: String,
        /// Explanation of the mismatch.
        message: String,
    },
    /// A dataset index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The dataset length.
        len: usize,
    },
    /// An external parameter vector had the wrong length.
    ParamLengthMismatch {
        /// Expected flattened parameter count.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A record store lookup missed.
    MissingRecord(String),
    /// A record could not be decoded.
    CorruptRecord(String),
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            DnnError::BadInput { layer, message } => {
                write!(f, "bad input to layer {layer}: {message}")
            }
            DnnError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for dataset of length {len}")
            }
            DnnError::ParamLengthMismatch { expected, got } => {
                write!(f, "parameter vector length {got} does not match net size {expected}")
            }
            DnnError::MissingRecord(key) => write!(f, "missing record: {key}"),
            DnnError::CorruptRecord(msg) => write!(f, "corrupt record: {msg}"),
        }
    }
}

impl std::error::Error for DnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DnnError {
    fn from(e: TensorError) -> Self {
        DnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_source_wired() {
        use std::error::Error;
        let e = DnnError::Tensor(TensorError::ReshapeMismatch { have: 1, want: 2 });
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e2 = DnnError::MissingRecord("k".into());
        assert!(e2.source().is_none());
        assert!(e2.to_string().contains('k'));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
