//! Hybrid SGD (paper §III-D, Fig. 4): intra-node synchronous SGD +
//! inter-node SEASGD.
//!
//! "ShmCaffe groups workers assigned to the same node. The same group of
//! workers aggregates gradients using ncclAllReduce ... then update the
//! local weight from the aggregated gradients. Next, the root worker of the
//! same worker group asynchronously updates the global parameters on the
//! SMB server using SEASGD. The root worker updates the local weight from
//! the global parameter and broadcasts the updated weight to other workers
//! of the same group."
//!
//! Because every member applies the same aggregated gradients from the same
//! initial weights, replicas stay bit-identical between exchanges; the root
//! broadcast after each SEASGD exchange re-synchronises the elastic mixing.

use shmcaffe_collectives::GpuComm;
use shmcaffe_simnet::SimContext;
use shmcaffe_smb::progress::ProgressBoard;
use shmcaffe_smb::SmbClient;

use crate::config::ShmCaffeConfig;
use crate::report::{EvalPoint, WorkerReport};
use crate::seasgd::{ElasticExchanger, SeasgdBuffers};
use crate::trainer::Trainer;
use crate::PlatformError;

/// Everything one Hybrid-SGD group member needs besides its trainer.
pub struct HybridHarness {
    /// Intra-node collective handle (member 0 is the group root).
    pub gpu: GpuComm,
    /// Group index (the SEASGD participant id).
    pub group: usize,
    /// Member index within the group.
    pub member: usize,
    /// Total number of groups (SEASGD participants).
    pub n_groups: usize,
    /// Root-only SMB state: client, buffers and progress board.
    pub root: Option<RootHarness>,
    /// Platform configuration.
    pub cfg: ShmCaffeConfig,
    /// Iteration budget per group.
    pub target_iters: u64,
}

/// SMB state held only by the group root.
pub struct RootHarness {
    /// SMB client bound to the group's node.
    pub client: SmbClient,
    /// The group's SEASGD buffers.
    pub buffers: SeasgdBuffers,
    /// The group-level progress board (one slot per group).
    pub board: ProgressBoard,
}

/// Outcome of one group member.
#[derive(Debug)]
pub struct HybridOutcome {
    /// Timing report for this member.
    pub report: WorkerReport,
    /// Evaluations (group 0's root only).
    pub evals: Vec<EvalPoint>,
}

/// Control flags broadcast by the root alongside progress checks.
const FLAG_CONTINUE: f32 = 0.0;
const FLAG_STOP: f32 = 1.0;

/// Runs Hybrid SGD for one group member (call from its sim process).
///
/// # Errors
///
/// Propagates SMB failures.
///
/// # Panics
///
/// Panics if `root` presence disagrees with `member == 0`.
pub fn run_group_member<T: Trainer>(
    ctx: &SimContext,
    mut harness: HybridHarness,
    trainer: &mut T,
) -> Result<HybridOutcome, PlatformError> {
    assert_eq!(
        harness.root.is_some(),
        harness.member == 0,
        "exactly the group root must carry the SMB harness"
    );
    let cfg = harness.cfg;
    let group_size = harness.gpu.size();
    let global_rank = harness.group; // worker-report slot: one per member, filled by caller
    let mut report = WorkerReport::new(global_rank * group_size + harness.member);
    let mut evals = Vec::new();
    let param_len = trainer.param_len();
    let wire_bytes = trainer.wire_bytes();

    let mut exchanger = harness.root.as_ref().map(|root| {
        ElasticExchanger::spawn(
            ctx,
            root.client.clone(),
            root.buffers,
            param_len,
            wire_bytes,
            &cfg,
            &format!("grp{}", harness.group),
        )
    });

    let mut grads = vec![0.0f32; param_len];
    let mut loss_ema = f32::NAN;
    let mut iter: u64 = 0;
    let mut stop = false;
    let inv_group = 1.0 / group_size as f32;

    while !stop {
        // T4: every member trains its own minibatch.
        let comp_start = ctx.now();
        let loss = trainer.compute_gradients(ctx);
        let comp_grad = ctx.now() - comp_start;

        // Intra-node SSGD: ncclAllReduce of the gradients (G_grp).
        let comm_start = ctx.now();
        trainer.read_grads(&mut grads);
        let mut summed = harness.gpu.all_reduce_wire(ctx, std::mem::take(&mut grads), wire_bytes);
        for g in summed.iter_mut() {
            *g *= inv_group;
        }
        trainer.write_grads(&summed);
        grads = summed;
        let comm_allreduce = ctx.now() - comm_start;

        // T5: every member applies the same aggregated update.
        let comp2_start = ctx.now();
        trainer.apply_update(ctx);
        let comp_update = ctx.now() - comp2_start;
        report.comp_ms.record_duration_ms(comp_grad + comp_update);

        // Inter-node SEASGD by the root, then weight broadcast.
        let mut comm_total = comm_allreduce;
        if iter.is_multiple_of(cfg.update_interval as u64) {
            let bcast_start = ctx.now();
            if let Some(ex) = exchanger.as_mut() {
                ex.exchange(ctx, trainer)?;
                let mixed = ex.mixed_weights().to_vec();
                harness.gpu.broadcast_wire(ctx, 0, Some(mixed), wire_bytes);
            } else {
                let mixed = harness.gpu.broadcast_wire(ctx, 0, None, wire_bytes);
                trainer.write_weights(&mixed);
            }
            comm_total += ctx.now() - bcast_start;
        }
        report.comm_ms.record_duration_ms(comm_total);

        loss_ema = if loss_ema.is_nan() { loss } else { 0.9 * loss_ema + 0.1 * loss };
        iter += 1;

        // Group-0 root evaluates.
        if harness.group == 0
            && harness.member == 0
            && cfg.eval_every > 0
            && iter.is_multiple_of(cfg.eval_every as u64)
        {
            if let Some(sample) = trainer.evaluate() {
                evals.push(EvalPoint {
                    iter,
                    time: ctx.now(),
                    loss: sample.loss,
                    top1: sample.top1,
                    topk: sample.topk,
                });
            }
        }

        // Progress/termination: root decides, group follows (a tiny flag
        // broadcast keeps the collective schedules aligned).
        if iter.is_multiple_of(cfg.progress_every as u64) || iter >= harness.target_iters {
            let flag = if let Some(root) = harness.root.as_ref() {
                let done = iter >= harness.target_iters;
                root.board.publish(&root.client, ctx, harness.group, iter, done)?;
                let snapshot = root.board.snapshot(&root.client, ctx)?;
                let stop_now = cfg.termination.should_stop(&snapshot, iter, harness.target_iters);
                let flag = if stop_now { FLAG_STOP } else { FLAG_CONTINUE };
                harness.gpu.broadcast(ctx, 0, Some(vec![flag]));
                flag
            } else {
                harness.gpu.broadcast(ctx, 0, None)[0]
            };
            stop = flag == FLAG_STOP;
        }
    }

    if let Some(ex) = exchanger.take() {
        ex.finish(ctx);
    }
    if let Some(root) = harness.root.as_ref() {
        root.board.publish(&root.client, ctx, harness.group, iter, true)?;
    }

    report.iters = iter;
    report.finished_at = ctx.now();
    report.final_loss = loss_ema;
    Ok(HybridOutcome { report, evals })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{ModeledTrainerFactory, Trainer, TrainerFactory};
    use parking_lot::Mutex;
    use shmcaffe_collectives::IntraNodeGroup;
    use shmcaffe_models::WorkloadModel;
    use shmcaffe_rdma::RdmaFabric;
    use shmcaffe_simnet::jitter::JitterModel;
    use shmcaffe_simnet::topology::{ClusterSpec, Fabric, NodeId};
    use shmcaffe_simnet::{SimDuration, Simulation};
    use shmcaffe_smb::SmbServer;
    use std::sync::Arc;

    /// Runs `n_groups` x `group_size` hybrid workers; returns outcomes
    /// indexed by (group, member).
    fn run_hybrid(
        n_groups: usize,
        group_size: usize,
        cfg: ShmCaffeConfig,
        workload: WorkloadModel,
    ) -> Vec<Vec<HybridOutcome>> {
        let fabric = Fabric::new(ClusterSpec::paper_testbed(n_groups));
        let rdma = RdmaFabric::new(fabric.clone());
        let server = SmbServer::new(rdma).unwrap();
        let factory = ModeledTrainerFactory::new(workload.clone(), cfg.jitter, cfg.seed);
        let outcomes: Arc<Mutex<Vec<Vec<Option<HybridOutcome>>>>> = Arc::new(Mutex::new(
            (0..n_groups).map(|_| (0..group_size).map(|_| None).collect()).collect(),
        ));

        // Shared-segment setup happens inside the simulation's first
        // process; workers wait on a readiness channel. (The platform layer
        // exercises the MPI key-broadcast variant instead.)
        let mut sim = Simulation::new();
        let wg_key: Arc<Mutex<Option<(shmcaffe_smb::ShmKey, shmcaffe_smb::ShmKey)>>> =
            Arc::new(Mutex::new(None));
        let ready = shmcaffe_simnet::channel::SimChannel::<()>::new("setup_ready");
        {
            let server = server.clone();
            let wg_key = Arc::clone(&wg_key);
            let ready = ready.clone();
            let wire = workload.wire_bytes;
            sim.spawn("setup", move |ctx| {
                let client = SmbClient::new(server, NodeId(0));
                let wg = client
                    .create(&ctx, "W_g", WorkloadModel::DEFAULT_PARAM_ELEMS, Some(wire))
                    .unwrap();
                let (_board, bkey) =
                    ProgressBoard::create(&client, &ctx, "ctrl", n_groups).unwrap();
                *wg_key.lock() = Some((wg, bkey));
                for _ in 0..n_groups {
                    ready.send(&ctx, ());
                }
            });
        }

        for g in 0..n_groups {
            let group_obj = IntraNodeGroup::new(fabric.clone(), NodeId(g), group_size);
            for m in 0..group_size {
                let gpu = group_obj.comm(m);
                let server = server.clone();
                let factory = factory.clone();
                let outcomes = Arc::clone(&outcomes);
                let wg_key = Arc::clone(&wg_key);
                let ready = ready.clone();
                let wire = workload.wire_bytes;
                sim.spawn(&format!("g{g}m{m}"), move |ctx| {
                    let global_rank = g * group_size + m;
                    let mut trainer = factory.make(global_rank, n_groups * group_size);
                    let root = if m == 0 {
                        ready.recv(&ctx);
                        let (wgk, bk) = wg_key.lock().expect("setup ran");
                        let client = SmbClient::new(server, NodeId(g));
                        let wg = client.alloc(&ctx, wgk).unwrap();
                        let dw_key = client
                            .create(&ctx, &format!("dW_grp{g}"), trainer.param_len(), Some(wire))
                            .unwrap();
                        let dw = client.alloc(&ctx, dw_key).unwrap();
                        let board = ProgressBoard::attach(&client, &ctx, bk, n_groups).unwrap();
                        Some(RootHarness { client, buffers: SeasgdBuffers { wg, dw }, board })
                    } else {
                        None
                    };
                    let harness = HybridHarness {
                        gpu,
                        group: g,
                        member: m,
                        n_groups,
                        root,
                        cfg,
                        target_iters: cfg.max_iters as u64,
                    };
                    let outcome = run_group_member(&ctx, harness, &mut trainer).unwrap();
                    outcomes.lock()[g][m] = Some(outcome);
                });
            }
        }
        sim.run();
        let slots = std::mem::take(&mut *outcomes.lock());
        slots
            .into_iter()
            .map(|grp| grp.into_iter().map(|o| o.expect("member finished")).collect())
            .collect()
    }

    fn quiet_cfg(max_iters: usize) -> ShmCaffeConfig {
        ShmCaffeConfig {
            max_iters,
            progress_every: 5,
            jitter: JitterModel::NONE,
            ..Default::default()
        }
    }

    #[test]
    fn two_groups_of_two_complete() {
        let wl = WorkloadModel::custom("t", 4_000_000, SimDuration::from_millis(20));
        let out = run_hybrid(2, 2, quiet_cfg(10), wl);
        for grp in &out {
            for o in grp {
                assert_eq!(o.report.iters, 10);
                assert!(o.report.comm_ms.mean() > 0.0);
            }
        }
    }

    #[test]
    fn group_members_stay_synchronized() {
        // Same iteration counts and same finish times within a group.
        let wl = WorkloadModel::custom("t", 4_000_000, SimDuration::from_millis(15));
        let out = run_hybrid(2, 4, quiet_cfg(8), wl);
        for grp in &out {
            let t0 = grp[0].report.finished_at;
            for o in grp {
                assert_eq!(o.report.iters, grp[0].report.iters);
                // Members finish within a bcast of each other.
                let dt = if o.report.finished_at > t0 {
                    o.report.finished_at - t0
                } else {
                    t0 - o.report.finished_at
                };
                assert!(dt.as_millis_f64() < 50.0, "skew {dt}");
            }
        }
    }

    #[test]
    fn update_interval_skips_inter_node_exchanges() {
        let wl = WorkloadModel::custom("t", 20_000_000, SimDuration::from_millis(30));
        let dense = run_hybrid(2, 2, quiet_cfg(8), wl.clone());
        let sparse = run_hybrid(2, 2, ShmCaffeConfig { update_interval: 4, ..quiet_cfg(8) }, wl);
        let comm = |out: &Vec<Vec<HybridOutcome>>| -> f64 {
            out.iter().flatten().map(|o| o.report.comm_ms.sum()).sum()
        };
        assert!(
            comm(&sparse) < comm(&dense),
            "sparser exchanges must cost less: {} vs {}",
            comm(&sparse),
            comm(&dense)
        );
    }
}
