//! Synthetic datasets and data-parallel sharding.
//!
//! The paper trains on ILSVRC-2012 ImageNet, which is not available here;
//! these synthetic tasks exercise the same optimizer dynamics (see
//! DESIGN.md §1). The sharding helpers implement the paper's data layout:
//! "the deep learning data is assigned to all workers without duplication"
//! (§III-C).

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use shmcaffe_tensor::Tensor;

use crate::DnnError;

/// A supervised classification dataset.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// Whether the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shape of one sample's features (without the batch axis).
    fn feature_dims(&self) -> Vec<usize>;

    /// Number of target classes.
    fn num_classes(&self) -> usize;

    /// Features and label of sample `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::IndexOutOfRange`] for a bad index.
    fn sample(&self, index: usize) -> Result<(Vec<f32>, usize), DnnError>;

    /// Assembles a minibatch tensor `(B, feature_dims...)` plus labels.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::IndexOutOfRange`] if any index is bad.
    fn minibatch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), DnnError> {
        let fdims = self.feature_dims();
        let per: usize = fdims.iter().product();
        let mut data = Vec::with_capacity(indices.len() * per);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let (f, l) = self.sample(i)?;
            debug_assert_eq!(f.len(), per);
            data.extend_from_slice(&f);
            labels.push(l);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&fdims);
        Ok((Tensor::from_vec(data, &dims)?, labels))
    }
}

/// Gaussian class clusters in `dim`-dimensional space.
#[derive(Debug, Clone)]
pub struct SyntheticBlobs {
    features: Vec<Vec<f32>>,
    labels: Vec<usize>,
    dim: usize,
    classes: usize,
}

impl SyntheticBlobs {
    /// Creates `samples` points across `classes` clusters of spread `noise`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `dim == 0`.
    pub fn new(classes: usize, dim: usize, samples: usize, noise: f32, seed: u64) -> Self {
        assert!(classes > 0 && dim > 0, "classes and dim must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Well-separated class centres on a scaled hypercube/simplex.
        let centers: Vec<Vec<f32>> = (0..classes)
            .map(|c| {
                (0..dim)
                    .map(|d| if (c >> (d % 8)) & 1 == 1 { 2.0 } else { -2.0 }
                        + (c as f32) * 0.7 * ((d * 31 + c * 17) as f32).sin())
                    .collect()
            })
            .collect();
        let mut features = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let c = i % classes;
            let point: Vec<f32> = centers[c]
                .iter()
                .map(|&m| {
                    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                    let u2: f32 = rng.gen_range(0.0f32..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                    m + noise * z
                })
                .collect();
            features.push(point);
            labels.push(c);
        }
        SyntheticBlobs { features, labels, dim, classes }
    }
}

impl Dataset for SyntheticBlobs {
    fn len(&self) -> usize {
        self.features.len()
    }
    fn feature_dims(&self) -> Vec<usize> {
        vec![self.dim]
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, index: usize) -> Result<(Vec<f32>, usize), DnnError> {
        if index >= self.len() {
            return Err(DnnError::IndexOutOfRange { index, len: self.len() });
        }
        Ok((self.features[index].clone(), self.labels[index]))
    }
}

/// Interleaved 2-D spirals — a classic non-linearly-separable task.
#[derive(Debug, Clone)]
pub struct Spirals {
    features: Vec<[f32; 2]>,
    labels: Vec<usize>,
    classes: usize,
}

impl Spirals {
    /// Creates `samples` points over `classes` interleaved spiral arms.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize, samples: usize, noise: f32, seed: u64) -> Self {
        assert!(classes > 0, "classes must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut features = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let c = i % classes;
            let t: f32 = rng.gen_range(0.15f32..1.0);
            let angle = t * 3.5 * std::f32::consts::PI
                + (c as f32) * 2.0 * std::f32::consts::PI / classes as f32;
            let r = t * 2.0;
            let nx: f32 = rng.gen_range(-noise..noise.max(1e-6));
            let ny: f32 = rng.gen_range(-noise..noise.max(1e-6));
            features.push([r * angle.cos() + nx, r * angle.sin() + ny]);
            labels.push(c);
        }
        Spirals { features, labels, classes }
    }
}

impl Dataset for Spirals {
    fn len(&self) -> usize {
        self.features.len()
    }
    fn feature_dims(&self) -> Vec<usize> {
        vec![2]
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, index: usize) -> Result<(Vec<f32>, usize), DnnError> {
        if index >= self.len() {
            return Err(DnnError::IndexOutOfRange { index, len: self.len() });
        }
        Ok((self.features[index].to_vec(), self.labels[index]))
    }
}

/// Procedurally generated `C×H×W` "images" with class-dependent structure
/// (oriented gratings plus noise) — an ImageNet stand-in exercising the
/// convolutional path.
#[derive(Debug, Clone)]
pub struct SyntheticImages {
    images: Vec<Vec<f32>>,
    labels: Vec<usize>,
    channels: usize,
    hw: usize,
    classes: usize,
}

impl SyntheticImages {
    /// Creates `samples` images of `channels × hw × hw` across `classes`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        classes: usize,
        channels: usize,
        hw: usize,
        samples: usize,
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(classes > 0 && channels > 0 && hw > 0, "dimensions must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let c = i % classes;
            // Class-specific orientation and frequency.
            let theta = (c as f32) * std::f32::consts::PI / classes as f32;
            let freq = 1.0 + (c % 3) as f32;
            let phase: f32 = rng.gen_range(0.0f32..std::f32::consts::PI);
            let mut img = Vec::with_capacity(channels * hw * hw);
            for ch in 0..channels {
                let chs = 1.0 + 0.3 * ch as f32;
                for y in 0..hw {
                    for x in 0..hw {
                        let u = x as f32 / hw as f32;
                        let v = y as f32 / hw as f32;
                        let s = (freq
                            * 2.0
                            * std::f32::consts::PI
                            * (u * theta.cos() + v * theta.sin())
                            * chs
                            + phase)
                            .sin();
                        let n: f32 = rng.gen_range(-noise..noise.max(1e-6));
                        img.push(s + n);
                    }
                }
            }
            images.push(img);
            labels.push(c);
        }
        SyntheticImages { images, labels, channels, hw, classes }
    }
}

impl Dataset for SyntheticImages {
    fn len(&self) -> usize {
        self.images.len()
    }
    fn feature_dims(&self) -> Vec<usize> {
        vec![self.channels, self.hw, self.hw]
    }
    fn num_classes(&self) -> usize {
        self.classes
    }
    fn sample(&self, index: usize) -> Result<(Vec<f32>, usize), DnnError> {
        if index >= self.len() {
            return Err(DnnError::IndexOutOfRange { index, len: self.len() });
        }
        Ok((self.images[index].clone(), self.labels[index]))
    }
}

/// The contiguous index range assigned to one worker: samples are divided
/// across workers without duplication (paper §III-C).
///
/// Remainder samples go to the lowest-ranked workers, so shard sizes differ
/// by at most one and the union is exactly `0..total`.
///
/// # Panics
///
/// Panics if `n_workers == 0` or `worker >= n_workers`.
pub fn shard_range(total: usize, worker: usize, n_workers: usize) -> std::ops::Range<usize> {
    assert!(n_workers > 0, "n_workers must be positive");
    assert!(worker < n_workers, "worker out of range");
    let base = total / n_workers;
    let rem = total % n_workers;
    let start = worker * base + worker.min(rem);
    let len = base + usize::from(worker < rem);
    start..start + len
}

/// Deterministic per-epoch minibatch index sampler over one worker's shard.
#[derive(Debug, Clone)]
pub struct EpochSampler {
    shard: Vec<usize>,
    batch: usize,
    cursor: usize,
    epoch: usize,
    seed: u64,
}

impl EpochSampler {
    /// Creates a sampler over `shard_range(total, worker, n_workers)` with
    /// the given minibatch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or the shard is empty.
    pub fn new(total: usize, worker: usize, n_workers: usize, batch: usize, seed: u64) -> Self {
        assert!(batch > 0, "batch must be positive");
        let range = shard_range(total, worker, n_workers);
        let shard: Vec<usize> = range.collect();
        assert!(!shard.is_empty(), "worker shard is empty");
        let mut s = EpochSampler { shard, batch, cursor: 0, epoch: 0, seed };
        s.shuffle();
        s
    }

    fn shuffle(&mut self) {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ (self.epoch as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        // Fisher-Yates.
        for i in (1..self.shard.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.shard.swap(i, j);
        }
    }

    /// The next minibatch of indices, wrapping (and reshuffling) at epoch
    /// boundaries.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batch);
        while out.len() < self.batch {
            if self.cursor >= self.shard.len() {
                self.cursor = 0;
                self.epoch += 1;
                self.shuffle();
            }
            out.push(self.shard[self.cursor]);
            self.cursor += 1;
        }
        out
    }

    /// Completed epochs over this shard.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Iterations per epoch for this shard (ceiling division).
    pub fn iters_per_epoch(&self) -> usize {
        self.shard.len().div_ceil(self.batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_classifiable_shapes() {
        let d = SyntheticBlobs::new(3, 4, 30, 0.1, 1);
        assert_eq!(d.len(), 30);
        assert_eq!(d.feature_dims(), vec![4]);
        assert_eq!(d.num_classes(), 3);
        let (f, l) = d.sample(5).unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(l, 5 % 3);
        assert!(d.sample(30).is_err());
    }

    #[test]
    fn blobs_same_seed_identical() {
        let a = SyntheticBlobs::new(2, 3, 10, 0.2, 9);
        let b = SyntheticBlobs::new(2, 3, 10, 0.2, 9);
        for i in 0..10 {
            assert_eq!(a.sample(i).unwrap(), b.sample(i).unwrap());
        }
    }

    #[test]
    fn minibatch_assembles_tensor() {
        let d = SyntheticBlobs::new(2, 3, 10, 0.1, 1);
        let (x, y) = d.minibatch(&[0, 1, 2, 3]).unwrap();
        assert_eq!(x.dims(), &[4, 3]);
        assert_eq!(y, vec![0, 1, 0, 1]);
    }

    #[test]
    fn spirals_and_images_have_correct_shapes() {
        let s = Spirals::new(3, 33, 0.05, 2);
        assert_eq!(s.feature_dims(), vec![2]);
        assert_eq!(s.sample(32).unwrap().0.len(), 2);
        let im = SyntheticImages::new(4, 3, 8, 12, 0.1, 3);
        assert_eq!(im.feature_dims(), vec![3, 8, 8]);
        let (x, y) = im.minibatch(&[0, 5]).unwrap();
        assert_eq!(x.dims(), &[2, 3, 8, 8]);
        assert_eq!(y, vec![0, 1]);
    }

    #[test]
    fn shards_partition_exactly() {
        for total in [0usize, 1, 7, 16, 100] {
            for n in [1usize, 2, 3, 5, 16] {
                let mut covered = Vec::new();
                for w in 0..n {
                    covered.extend(shard_range(total, w, n));
                }
                assert_eq!(covered, (0..total).collect::<Vec<_>>(), "total={total} n={n}");
                // Sizes differ by at most 1.
                let sizes: Vec<usize> = (0..n).map(|w| shard_range(total, w, n).len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn sampler_covers_shard_each_epoch() {
        let mut s = EpochSampler::new(20, 0, 2, 3, 7);
        assert_eq!(s.iters_per_epoch(), 4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.extend(s.next_batch());
        }
        // First 10 draws (one epoch of 10 + 2 from the next) cover the shard.
        let mut unique: Vec<usize> = seen.iter().take(10).cloned().collect();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique, (0..10).collect::<Vec<_>>());
        assert!(seen.iter().all(|&i| i < 10), "worker 0 must stay in its shard");
    }

    #[test]
    fn sampler_is_deterministic_and_reshuffles() {
        let batches = |seed: u64| -> Vec<Vec<usize>> {
            let mut s = EpochSampler::new(8, 0, 1, 4, seed);
            (0..4).map(|_| s.next_batch()).collect()
        };
        assert_eq!(batches(3), batches(3));
        let b = batches(3);
        // Epoch 0 and epoch 1 orders should differ (reshuffle).
        let e0: Vec<usize> = b[0].iter().chain(&b[1]).cloned().collect();
        let e1: Vec<usize> = b[2].iter().chain(&b[3]).cloned().collect();
        assert_ne!(e0, e1);
        let mut s0 = e0.clone();
        let mut s1 = e1.clone();
        s0.sort_unstable();
        s1.sort_unstable();
        assert_eq!(s0, s1);
    }

    #[test]
    #[should_panic(expected = "worker out of range")]
    fn shard_rejects_bad_worker() {
        shard_range(10, 3, 3);
    }
}
