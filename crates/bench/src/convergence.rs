//! Real-training convergence runs for Figs 8 and 11.
//!
//! These train actual proxy networks (see `shmcaffe_models::proxies`) on
//! synthetic datasets, so accuracy/loss differences between the platforms
//! and worker counts reflect genuine optimizer dynamics: asynchronous
//! SEASGD degrading at high worker counts, hybrid staying near the 1-GPU
//! baseline (paper Fig 11).

use std::sync::Arc;

use shmcaffe::config::ShmCaffeConfig;
use shmcaffe::platforms::{CaffeMpi, CaffeSsgd, MpiCaffe, ShmCaffeA, ShmCaffeH, SsgdConfig};
use shmcaffe::report::TrainingReport;
use shmcaffe::trainer::RealTrainerFactory;
use shmcaffe::PlatformError;
use shmcaffe_dnn::data::{Dataset, SyntheticBlobs};
use shmcaffe_dnn::{LrPolicy, SolverConfig};
use shmcaffe_models::proxies;
use shmcaffe_simnet::jitter::JitterModel;
use shmcaffe_simnet::topology::ClusterSpec;
use shmcaffe_simnet::SimDuration;

use crate::experiments::{hybrid_shape, Platform};

/// The synthetic classification task used by the convergence experiments.
#[derive(Debug, Clone, Copy)]
pub struct ConvergenceTask {
    /// Number of classes.
    pub classes: usize,
    /// Feature dimensionality.
    pub dim: usize,
    /// Training-set size.
    pub train_samples: usize,
    /// Held-out evaluation size.
    pub eval_samples: usize,
    /// Cluster noise (larger = harder).
    pub noise: f32,
    /// Hidden width of the MLP proxy.
    pub hidden: usize,
    /// Per-worker minibatch size.
    pub batch: usize,
    /// Passes over the full training set, *summed across workers* — the
    /// paper's regime: 15 ImageNet epochs regardless of the worker count,
    /// so per-worker iterations shrink as workers are added.
    pub epochs: usize,
    /// Dataset/initialisation seed.
    pub seed: u64,
}

impl Default for ConvergenceTask {
    fn default() -> Self {
        // Deliberately near capacity (heavily overlapping clusters, small
        // per-worker shards): staleness and gradient asynchrony then cost
        // measurable accuracy, which is the effect Fig 11 plots.
        ConvergenceTask {
            classes: 8,
            dim: 8,
            train_samples: 1600,
            eval_samples: 600,
            noise: 2.4,
            hidden: 24,
            batch: 16,
            epochs: 30,
            seed: 20180707, // ICDCS 2018
        }
    }
}

impl ConvergenceTask {
    /// Per-worker iteration budget for `workers` workers (fixed total
    /// epochs over the shared dataset).
    pub fn iters_for(&self, workers: usize) -> usize {
        (self.train_samples * self.epochs).div_ceil(workers.max(1) * self.batch)
    }

    /// Builds the trainer factory for `n_workers` with a given base
    /// learning rate (the paper's step-decay schedule scaled to the run).
    pub fn factory(&self, base_lr: f32, lr_step: usize, eval_topk: usize) -> RealTrainerFactory {
        let train = Arc::new(SyntheticBlobs::new(
            self.classes,
            self.dim,
            self.train_samples,
            self.noise,
            self.seed,
        ));
        let eval: Arc<dyn Dataset> = Arc::new(SyntheticBlobs::new(
            self.classes,
            self.dim,
            self.eval_samples,
            self.noise,
            self.seed ^ 0xEEEE,
        ));
        let (dim, hidden, classes, seed) = (self.dim, self.hidden, self.classes, self.seed);
        RealTrainerFactory::builder()
            .dataset(train)
            .eval_dataset(eval)
            .net_builder(move |s| proxies::mlp(dim, hidden, classes, s ^ seed))
            .solver(SolverConfig {
                base_lr,
                momentum: 0.9,
                weight_decay: 0.0005,
                policy: LrPolicy::Step { gamma: 0.1, step_size: lr_step },
                clip_gradients: Some(5.0),
            })
            .batch(self.batch)
            .init_seed(self.seed ^ 0x5EED)
            .data_seed(self.seed ^ 0xDA7A)
            .comp_model(SimDuration::from_millis(5), JitterModel::hpc_default())
            .eval_topk(eval_topk)
            .build()
    }

    /// Runs a convergence experiment on one platform with `workers`
    /// workers, evaluating every `eval_every` iterations.
    ///
    /// # Errors
    ///
    /// Propagates platform failures.
    pub fn run(
        &self,
        platform: Platform,
        workers: usize,
        eval_every: usize,
    ) -> Result<TrainingReport, PlatformError> {
        let nodes = workers.div_ceil(4).max(1);
        let base_lr = 0.1;
        let iters = self.iters_for(workers);
        let factory = self.factory(base_lr, (iters * 2).div_ceil(3), 2);
        let shm_cfg = ShmCaffeConfig {
            max_iters: iters,
            progress_every: 25,
            eval_every,
            moving_rate: 0.2,
            update_interval: 1,
            jitter: JitterModel::NONE,
            seed: self.seed,
            ..Default::default()
        };
        let ssgd_cfg = SsgdConfig { max_iters: iters, eval_every, ..Default::default() };
        match platform {
            Platform::Caffe => {
                CaffeSsgd::new(ClusterSpec::paper_testbed(1), workers, ssgd_cfg).run(factory)
            }
            Platform::CaffeMpi => {
                CaffeMpi::new(ClusterSpec::paper_testbed(nodes), workers, ssgd_cfg).run(factory)
            }
            Platform::MpiCaffe => {
                MpiCaffe::new(ClusterSpec::paper_testbed(nodes), workers, ssgd_cfg).run(factory)
            }
            Platform::ShmCaffeA => {
                ShmCaffeA::new(ClusterSpec::paper_testbed(nodes), workers, shm_cfg).run(factory)
            }
            Platform::ShmCaffeH => {
                let (groups, group_size) = hybrid_shape(workers);
                ShmCaffeH::new(
                    ClusterSpec::paper_testbed(groups.max(1)),
                    groups,
                    group_size,
                    shm_cfg,
                )
                .run(factory)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_task() -> ConvergenceTask {
        ConvergenceTask {
            train_samples: 400,
            eval_samples: 150,
            epochs: 8,
            noise: 1.0,
            classes: 4,
            ..Default::default()
        }
    }

    #[test]
    fn single_worker_converges() {
        let task = quick_task();
        let report = task.run(Platform::ShmCaffeA, 1, 40).unwrap();
        let last = report.final_eval().expect("evaluations recorded");
        assert!(last.top1 > 0.6, "top1 {}", last.top1);
    }

    #[test]
    fn ssgd_platform_converges_too() {
        let task = quick_task();
        let report = task.run(Platform::MpiCaffe, 4, 40).unwrap();
        let last = report.final_eval().expect("evaluations recorded");
        assert!(last.top1 > 0.6, "top1 {}", last.top1);
    }
}
