//! A compact text format for defining networks — the stand-in for Caffe's
//! `prototxt` model definitions.
//!
//! A spec is a `;`-separated chain of layer clauses applied to a known
//! input shape:
//!
//! ```text
//! conv 8 3x3 pad 1; relu; lrn; pool 2; conv 16 3x3 pad 1; relu; pool 2; fc 64; relu; dropout 0.5; fc 10
//! ```
//!
//! | clause | meaning |
//! |---|---|
//! | `conv C KxK [stride S] [pad P]` | 2-D convolution to `C` channels |
//! | `pool K [stride S]` | max pooling (stride defaults to `K`) |
//! | `avgpool K [stride S]` | average pooling |
//! | `fc N` | fully connected to `N` outputs |
//! | `relu` / `sigmoid` / `tanh` | activations |
//! | `dropout R` | inverted dropout with ratio `R` |
//! | `bn` | batch normalisation over the current channels |
//! | `lrn` | local response normalisation (Caffe defaults) |
//!
//! Shapes are tracked clause by clause, so mismatches are reported at
//! build time with the offending clause.

use shmcaffe_tensor::conv::Conv2dGeometry;
use shmcaffe_tensor::init::Filler;
use shmcaffe_tensor::pool::PoolKind;

use crate::layers::{BatchNorm, Conv2d, Dropout, InnerProduct, Lrn, Pool2d, Relu, Sigmoid, Tanh};
use crate::{DnnError, Net};

/// The running shape while building: either spatial `(C, H, W)` or an
/// already-flattened feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecShape {
    Spatial { c: usize, h: usize, w: usize },
    Flat(usize),
}

impl SpecShape {
    fn flat_len(self) -> usize {
        match self {
            SpecShape::Spatial { c, h, w } => c * h * w,
            SpecShape::Flat(n) => n,
        }
    }
}

fn parse_err(clause: &str, msg: &str) -> DnnError {
    DnnError::BadInput { layer: format!("netspec `{clause}`"), message: msg.to_string() }
}

fn parse_usize(clause: &str, tok: Option<&str>, what: &str) -> Result<usize, DnnError> {
    tok.ok_or_else(|| parse_err(clause, &format!("missing {what}")))?
        .parse::<usize>()
        .map_err(|_| parse_err(clause, &format!("invalid {what}")))
}

/// Builds a [`Net`] from a text spec over `(channels, h, w)` inputs.
///
/// # Errors
///
/// Returns [`DnnError::BadInput`] naming the offending clause for syntax
/// errors or shape mismatches.
///
/// # Example
///
/// ```rust
/// use shmcaffe_dnn::netspec::build_net;
/// use shmcaffe_dnn::Phase;
/// use shmcaffe_tensor::Tensor;
///
/// # fn main() -> Result<(), shmcaffe_dnn::DnnError> {
/// let mut net = build_net(
///     "lenet",
///     (1, 12, 12),
///     "conv 4 3x3 pad 1; relu; pool 2; fc 32; relu; fc 5",
///     7,
/// )?;
/// let y = net.forward(&Tensor::zeros(&[2, 1, 12, 12]), Phase::Test)?;
/// assert_eq!(y.dims(), &[2, 5]);
/// # Ok(())
/// # }
/// ```
pub fn build_net(
    name: &str,
    input: (usize, usize, usize),
    spec: &str,
    seed: u64,
) -> Result<Net, DnnError> {
    let mut net = Net::new(name);
    let mut shape = SpecShape::Spatial { c: input.0, h: input.1, w: input.2 };
    let mut layer_idx = 0usize;

    for raw in spec.split(';') {
        let clause = raw.trim();
        if clause.is_empty() {
            continue;
        }
        let mut toks = clause.split_whitespace();
        let op = toks.next().expect("non-empty clause has a token");
        let lname = format!("{op}{layer_idx}");
        layer_idx += 1;

        match op {
            "conv" => {
                let out_c = parse_usize(clause, toks.next(), "channel count")?;
                let kspec = toks.next().ok_or_else(|| parse_err(clause, "missing KxK kernel"))?;
                let (kh, kw) = kspec
                    .split_once('x')
                    .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
                    .ok_or_else(|| parse_err(clause, "kernel must be KxK"))?;
                let mut stride = 1usize;
                let mut pad = 0usize;
                while let Some(kw_tok) = toks.next() {
                    match kw_tok {
                        "stride" => stride = parse_usize(clause, toks.next(), "stride")?,
                        "pad" => pad = parse_usize(clause, toks.next(), "pad")?,
                        other => {
                            return Err(parse_err(clause, &format!("unknown option `{other}`")))
                        }
                    }
                }
                let SpecShape::Spatial { c, h, w } = shape else {
                    return Err(parse_err(clause, "conv after flattening (fc) is not allowed"));
                };
                let geom = Conv2dGeometry {
                    in_channels: c,
                    in_h: h,
                    in_w: w,
                    kernel_h: kh,
                    kernel_w: kw,
                    stride_h: stride,
                    stride_w: stride,
                    pad_h: pad,
                    pad_w: pad,
                };
                let (oh, ow) = (geom.out_h()?, geom.out_w()?);
                net.add(Conv2d::new(&lname, geom, out_c, Filler::Msra, seed)?);
                shape = SpecShape::Spatial { c: out_c, h: oh, w: ow };
            }
            "pool" | "avgpool" => {
                let k = parse_usize(clause, toks.next(), "kernel")?;
                let stride = match toks.next() {
                    Some("stride") => parse_usize(clause, toks.next(), "stride")?,
                    Some(other) => {
                        return Err(parse_err(clause, &format!("unknown option `{other}`")))
                    }
                    None => k,
                };
                let SpecShape::Spatial { c, h, w } = shape else {
                    return Err(parse_err(clause, "pool after flattening (fc) is not allowed"));
                };
                if h != w {
                    return Err(parse_err(clause, "pooling requires square activations"));
                }
                let kind = if op == "pool" { PoolKind::Max } else { PoolKind::Average };
                let geom = Conv2dGeometry::square(c, h, k, stride, 0);
                let (oh, ow) = (geom.out_h()?, geom.out_w()?);
                net.add(Pool2d::new(&lname, kind, geom)?);
                shape = SpecShape::Spatial { c, h: oh, w: ow };
            }
            "fc" => {
                let out = parse_usize(clause, toks.next(), "output count")?;
                let in_features = shape.flat_len();
                net.add(InnerProduct::new(&lname, in_features, out, Filler::Xavier, seed));
                shape = SpecShape::Flat(out);
            }
            "relu" => {
                net.add(Relu::new(&lname));
            }
            "sigmoid" => {
                net.add(Sigmoid::new(&lname));
            }
            "tanh" => {
                net.add(Tanh::new(&lname));
            }
            "dropout" => {
                let ratio: f32 = toks
                    .next()
                    .ok_or_else(|| parse_err(clause, "missing ratio"))?
                    .parse()
                    .map_err(|_| parse_err(clause, "invalid ratio"))?;
                if !(0.0..1.0).contains(&ratio) {
                    return Err(parse_err(clause, "ratio must be in [0, 1)"));
                }
                net.add(Dropout::new(&lname, ratio, seed));
            }
            "bn" => {
                let channels = match shape {
                    SpecShape::Spatial { c, .. } => c,
                    SpecShape::Flat(n) => n,
                };
                net.add(BatchNorm::new(&lname, channels));
            }
            "lrn" => {
                if !matches!(shape, SpecShape::Spatial { .. }) {
                    return Err(parse_err(clause, "lrn requires spatial activations"));
                }
                net.add(Lrn::with_defaults(&lname));
            }
            other => return Err(parse_err(clause, &format!("unknown layer `{other}`"))),
        }
        if let Some(extra) = toks.next() {
            return Err(parse_err(clause, &format!("unexpected trailing token `{extra}`")));
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;
    use shmcaffe_tensor::Tensor;

    #[test]
    fn builds_lenet_like_spec() {
        let mut net = build_net(
            "lenet",
            (3, 16, 16),
            "conv 8 3x3 pad 1; relu; pool 2; conv 16 3x3 pad 1; relu; pool 2; fc 64; relu; dropout 0.5; fc 10",
            1,
        )
        .unwrap();
        let y = net.forward(&Tensor::zeros(&[2, 3, 16, 16]), Phase::Test).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        assert_eq!(net.layer_count(), 10);
    }

    #[test]
    fn conv_options_stride_and_pad() {
        let mut net = build_net("s", (1, 9, 9), "conv 2 3x3 stride 2 pad 1", 1).unwrap();
        // (9 + 2 - 3)/2 + 1 = 5.
        let y = net.forward(&Tensor::zeros(&[1, 1, 9, 9]), Phase::Test).unwrap();
        assert_eq!(y.dims(), &[1, 2, 5, 5]);
    }

    #[test]
    fn avgpool_and_lrn_and_bn() {
        let mut net =
            build_net("m", (2, 8, 8), "conv 4 1x1; bn; relu; lrn; avgpool 2; fc 3", 2).unwrap();
        let y = net.forward(&Tensor::zeros(&[3, 2, 8, 8]), Phase::Train).unwrap();
        assert_eq!(y.dims(), &[3, 3]);
    }

    #[test]
    fn error_names_offending_clause() {
        let err = build_net("b", (1, 8, 8), "conv 4 3x3; frobnicate", 1).unwrap_err();
        assert!(err.to_string().contains("frobnicate"), "{err}");
        let err = build_net("b", (1, 8, 8), "conv 4", 1).unwrap_err();
        assert!(err.to_string().contains("KxK"), "{err}");
        let err = build_net("b", (1, 8, 8), "fc 10; conv 4 3x3", 1).unwrap_err();
        assert!(err.to_string().contains("flatten"), "{err}");
        let err = build_net("b", (1, 4, 4), "conv 4 9x9", 1).unwrap_err();
        assert!(!err.to_string().is_empty());
        let err = build_net("b", (1, 8, 8), "dropout 1.5", 1).unwrap_err();
        assert!(err.to_string().contains("ratio"), "{err}");
    }

    #[test]
    fn spec_net_trains() {
        use crate::data::{Dataset, SyntheticBlobs};
        let ds = SyntheticBlobs::new(3, 6, 90, 0.3, 5);
        let mut net = build_net("mlp", (6, 1, 1), "fc 16; relu; fc 3", 9).unwrap();
        let mut first = f32::NAN;
        let mut last = f32::NAN;
        for i in 0..60 {
            let idx: Vec<usize> = (0..30).map(|j| (i * 30 + j) % 90).collect();
            let (x, y) = ds.minibatch(&idx).unwrap();
            let (loss, _) = net.forward_loss(&x, &y, Phase::Train).unwrap();
            net.backward_from_loss(&y).unwrap();
            net.for_each_param(|p, g| {
                for (pv, gv) in p.data_mut().iter_mut().zip(g.data().iter()) {
                    *pv -= 0.1 * gv;
                }
            });
            net.zero_grads();
            if i == 0 {
                first = loss;
            }
            last = loss;
        }
        assert!(last < first * 0.7, "{first} -> {last}");
    }

    #[test]
    fn empty_and_whitespace_clauses_are_skipped() {
        let net = build_net("e", (1, 4, 4), " ; fc 2 ;; ", 1).unwrap();
        assert_eq!(net.layer_count(), 1);
    }
}
