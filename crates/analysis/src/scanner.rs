//! A token-level Rust lexer for the lint rules in [`crate::rules`].
//!
//! The lexer classifies every character of a source file into code tokens
//! (identifiers, lifetimes, literals, punctuation) and trivia (whitespace,
//! comments), handling the full literal surface the rules can trip over:
//! nested block comments, raw strings with hash fences, byte strings, byte
//! chars, raw identifiers and char-vs-lifetime disambiguation. Rules match
//! banned names against [`TokenKind::Ident`] tokens by equality, so a
//! lifetime `'Instant`, a comment, or a string body can never fire a rule
//! and `r#HashMap` (which *is* the identifier `HashMap`) still does. A full
//! parser stays overkill: every invariant the lint enforces is visible at
//! the token level.

/// Classification of one code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword. Raw identifiers (`r#type`) lex as one token
    /// carrying the bare name (`type`).
    Ident,
    /// Lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Numeric literal, including separators, suffixes and exponents
    /// (`1_000u64`, `0x1f`, `1.5e-3`).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Any other punctuation character, one per token.
    Punct,
}

/// One code token. Trivia (whitespace, comments) never appears here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The token text. For raw identifiers this is the bare name; for
    /// literals it includes the quotes/prefix.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// Char offset (not bytes) of the token's first character in the input.
    pub start: usize,
}

/// What a span of raw (pre-classification) input is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RawKind {
    Whitespace,
    Comment,
    Str,
    Char,
    Lifetime,
    /// `text_start` is where the identifier's name begins — past the `r#`
    /// of a raw identifier, equal to `start` otherwise.
    Ident {
        text_start: usize,
    },
    Number,
    Punct,
}

struct RawTok {
    kind: RawKind,
    start: usize,
    end: usize,
    line: usize,
}

/// Lexes `src` into code tokens, dropping comments and whitespace.
pub fn tokens(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    raw_lex(&chars)
        .into_iter()
        .filter_map(|t| {
            let (kind, text_start) = match t.kind {
                RawKind::Whitespace | RawKind::Comment => return None,
                RawKind::Str => (TokenKind::Str, t.start),
                RawKind::Char => (TokenKind::Char, t.start),
                RawKind::Lifetime => (TokenKind::Lifetime, t.start),
                RawKind::Ident { text_start } => (TokenKind::Ident, text_start),
                RawKind::Number => (TokenKind::Number, t.start),
                RawKind::Punct => (TokenKind::Punct, t.start),
            };
            Some(Token {
                kind,
                text: chars[text_start..t.end].iter().collect(),
                line: t.line,
                start: t.start,
            })
        })
        .collect()
}

/// Returns a copy of `src` where comments and the contents of string/char
/// literals are replaced by spaces. Newlines are preserved (including inside
/// literals) so line numbers map 1:1 to the original text. Used by the
/// substring-pattern rules that need more than one token of context.
pub fn strip_non_code(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    for t in raw_lex(&chars) {
        match t.kind {
            RawKind::Comment | RawKind::Str | RawKind::Char => {
                for &c in &chars[t.start..t.end] {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            _ => out.extend(&chars[t.start..t.end]),
        }
    }
    out
}

/// Char offsets of identifier tokens in `line` whose text equals `word`.
/// Substrings of longer identifiers, lifetimes, literal bodies and comments
/// never match.
pub fn word_occurrences(line: &str, word: &str) -> Vec<usize> {
    tokens(line)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text == word)
        .map(|t| t.start)
        .collect()
}

/// Whether `c` can be part of an identifier.
pub fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn raw_lex(chars: &[char]) -> Vec<RawTok> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let start = i;
        let c = chars[i];
        let kind = if c.is_whitespace() {
            while i < chars.len() && chars[i].is_whitespace() {
                i += 1;
            }
            RawKind::Whitespace
        } else if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            RawKind::Comment
        } else if c == '/' && chars.get(i + 1) == Some(&'*') {
            i = block_comment_end(chars, i);
            RawKind::Comment
        } else if c == '"' {
            i = string_end(chars, i);
            RawKind::Str
        } else if c == '\'' {
            // A char literal is `'\…'` or `'x'`; anything else (`'static`,
            // `'_`, a loop label) is a lifetime.
            let is_char = match chars.get(i + 1) {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                i = char_end(chars, i);
                RawKind::Char
            } else {
                i += 1;
                while i < chars.len() && is_word_char(chars[i]) {
                    i += 1;
                }
                RawKind::Lifetime
            }
        } else if let Some(p) = literal_prefix(chars, i) {
            match p {
                Prefix::RawStr { quote, hashes } => {
                    i = raw_string_end(chars, quote, hashes);
                    RawKind::Str
                }
                Prefix::Str { quote } => {
                    i = string_end(chars, quote);
                    RawKind::Str
                }
                Prefix::ByteChar { quote } => {
                    i = char_end(chars, quote);
                    RawKind::Char
                }
                Prefix::RawIdent { name_start } => {
                    i = name_start;
                    while i < chars.len() && is_word_char(chars[i]) {
                        i += 1;
                    }
                    RawKind::Ident { text_start: name_start }
                }
            }
        } else if is_ident_start(c) {
            while i < chars.len() && is_word_char(chars[i]) {
                i += 1;
            }
            RawKind::Ident { text_start: start }
        } else if c.is_ascii_digit() {
            i = number_end(chars, i);
            RawKind::Number
        } else {
            i += 1;
            RawKind::Punct
        };
        out.push(RawTok { kind, start, end: i, line });
        line += chars[start..i].iter().filter(|&&c| c == '\n').count();
    }
    out
}

enum Prefix {
    /// `r"`, `r#"`, `br##"` …: `quote` is the opening `"`.
    RawStr { quote: usize, hashes: usize },
    /// `b"`: a plain string body with escapes.
    Str { quote: usize },
    /// `b'`: a char body.
    ByteChar { quote: usize },
    /// `r#name`: a raw identifier, name starting at `name_start`.
    RawIdent { name_start: usize },
}

/// Classifies an `r`/`b` at `i` as a literal prefix, or `None` if it just
/// starts an ordinary identifier.
fn literal_prefix(chars: &[char], i: usize) -> Option<Prefix> {
    match chars[i] {
        'r' => {
            let mut j = i + 1;
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                j += 1;
                hashes += 1;
            }
            match chars.get(j) {
                Some('"') => Some(Prefix::RawStr { quote: j, hashes }),
                Some(&c) if hashes == 1 && is_ident_start(c) => {
                    Some(Prefix::RawIdent { name_start: j })
                }
                _ => None,
            }
        }
        'b' => match chars.get(i + 1) {
            Some('"') => Some(Prefix::Str { quote: i + 1 }),
            Some('\'') => Some(Prefix::ByteChar { quote: i + 1 }),
            Some('r') => {
                let mut j = i + 2;
                let mut hashes = 0;
                while chars.get(j) == Some(&'#') {
                    j += 1;
                    hashes += 1;
                }
                if chars.get(j) == Some(&'"') {
                    Some(Prefix::RawStr { quote: j, hashes })
                } else {
                    None
                }
            }
            _ => None,
        },
        _ => None,
    }
}

fn block_comment_end(chars: &[char], start: usize) -> usize {
    let mut depth = 1usize;
    let mut i = start + 2;
    while i < chars.len() && depth > 0 {
        if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
            depth += 1;
            i += 2;
        } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
            depth -= 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    i
}

fn string_end(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn raw_string_end(chars: &[char], quote: usize, hashes: usize) -> usize {
    let mut i = quote + 1;
    while i < chars.len() {
        if chars[i] == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#')) {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

fn char_end(chars: &[char], open: usize) -> usize {
    let mut i = open + 1;
    if chars.get(i) == Some(&'\\') {
        i += 2; // the escaped char
                // Multi-char escapes (\u{..}, \x..) run to the closing quote.
        while i < chars.len() && chars[i] != '\'' {
            i += 1;
        }
    } else if i < chars.len() {
        i += 1;
    }
    if chars.get(i) == Some(&'\'') {
        i += 1;
    }
    i
}

fn number_end(chars: &[char], start: usize) -> usize {
    fn digits_and_suffix(chars: &[char], mut i: usize) -> usize {
        while let Some(&c) = chars.get(i) {
            if is_word_char(c) {
                i += 1;
            } else if (c == '+' || c == '-')
                && matches!(chars.get(i.wrapping_sub(1)), Some('e') | Some('E'))
                && chars.get(i + 1).is_some_and(char::is_ascii_digit)
            {
                i += 1; // exponent sign: 1e-3
            } else {
                break;
            }
        }
        i
    }
    let mut i = digits_and_suffix(chars, start);
    // A fractional part only if a digit follows the dot — `0..n` stays a
    // range, `x.1` tuple indexing never reaches here.
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
        i = digits_and_suffix(chars, i + 1);
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokens(src).into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn line_comments_are_blanked() {
        let s = strip_non_code("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!s.contains("HashMap"));
        assert!(s.contains("let y = 2;"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = strip_non_code("a /* outer /* HashMap */ still comment */ b");
        assert!(!s.contains("HashMap"));
        assert!(!s.contains("still"));
        assert!(s.starts_with('a') && s.trim_end().ends_with('b'));
    }

    #[test]
    fn strings_and_escapes_are_blanked() {
        let s = strip_non_code(r#"call("Instant \" SystemTime", x)"#);
        assert!(!s.contains("Instant"));
        assert!(s.contains("call("));
        assert!(s.contains(", x)"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = strip_non_code(r###"let p = r#"thread_rng"#; done"###);
        assert!(!s.contains("thread_rng"));
        assert!(s.contains("done"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = strip_non_code("fn f<'a>(x: &'a str) { let c = 'H'; }");
        assert!(s.contains("<'a>"));
        assert!(s.contains("&'a str"));
        assert!(!s.contains('H'));
    }

    #[test]
    fn newlines_inside_literals_keep_line_numbers() {
        let src = "let s = \"a\nb\";\nlet t = 3;";
        let s = strip_non_code(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(s.lines().nth(2).unwrap().contains("let t = 3;"));
    }

    #[test]
    fn word_boundaries_reject_substrings() {
        assert!(word_occurrences("Instantiates the fabric", "Instant").is_empty());
        assert!(word_occurrences("MyHashMapLike", "HashMap").is_empty());
        assert_eq!(word_occurrences("use std::time::Instant;", "Instant").len(), 1);
        assert_eq!(word_occurrences("HashMap<u32, HashMap<u32, u32>>", "HashMap").len(), 2);
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let s = strip_non_code("let r#type = 1; let b = 2;");
        assert!(s.contains("r#type"));
        assert!(s.contains("let b = 2;"));
    }

    #[test]
    fn tokens_classify_kinds() {
        let toks = tokens("let n = 1_000u64; s.x(\"lit\", 'c', 1.5e-3)");
        let kind_of = |text: &str| {
            toks.iter().find(|t| t.text == text).map(|t| t.kind).unwrap_or_else(|| {
                panic!("no token {text:?} in {toks:?}");
            })
        };
        assert_eq!(kind_of("let"), TokenKind::Ident);
        assert_eq!(kind_of("1_000u64"), TokenKind::Number);
        assert_eq!(kind_of("1.5e-3"), TokenKind::Number);
        assert_eq!(kind_of("\"lit\""), TokenKind::Str);
        assert_eq!(kind_of("'c'"), TokenKind::Char);
        assert_eq!(kind_of("."), TokenKind::Punct);
    }

    #[test]
    fn lifetime_named_like_a_type_is_not_an_ident() {
        let toks = tokens("fn f<'Instant>(x: &'Instant str) -> &'Instant str { x }");
        assert!(toks.iter().all(|t| !(t.kind == TokenKind::Ident && t.text == "Instant")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count(), 3);
    }

    #[test]
    fn raw_identifier_tokens_carry_the_bare_name() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
        // `r#HashMap` IS the identifier HashMap and must surface as such.
        assert_eq!(idents("use r#HashMap;"), ["use", "HashMap"]);
    }

    #[test]
    fn byte_literal_bodies_never_surface_as_idents() {
        let src = r##"let a = b'x'; let s = b"park"; let r = br"mpsc";"##;
        assert_eq!(idents(src), ["let", "a", "let", "s", "let", "r"]);
    }

    #[test]
    fn multiline_literals_advance_line_numbers() {
        let toks = tokens("let s = r#\"a\nb\"#;\nnext");
        let next = toks.iter().find(|t| t.text == "next").unwrap();
        assert_eq!(next.line, 3);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.line, 1);
    }

    #[test]
    fn range_expressions_do_not_swallow_dots() {
        let toks = tokens("for i in 0..n {}");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Number && t.text == "0"));
        assert_eq!(toks.iter().filter(|t| t.text == "." && t.kind == TokenKind::Punct).count(), 2);
    }
}
