//! Fig. 15 — Communication time: ShmCaffe-A vs ShmCaffe-H per model when
//! scaling to 8 and 16 GPUs.
//!
//! Paper anchors: at 8 GPUs the smaller models show little difference;
//! "ShmCaffe-H is much better than ShmCaffe-A in communication time as the
//! DNN parameter size increases and as it scales out", and H wins on
//! iteration time for every model at 16 GPUs.
//!
//! Run with `cargo run --release -p shmcaffe-bench --bin fig15_comm_a_vs_h`.

use shmcaffe_bench::experiments::{measure, Breakdown, Platform, DEFAULT_MEASURE_ITERS};
use shmcaffe_bench::table::{ms, Table};
use shmcaffe_models::CnnModel;

fn main() {
    println!("Fig 15 reproduction: communication time, ShmCaffe-A vs ShmCaffe-H\n");
    for gpus in [8usize, 16] {
        let mut table = Table::new(
            &format!("{gpus} GPUs"),
            &["model", "A comm (ms)", "H comm (ms)", "A iter (ms)", "H iter (ms)", "H wins iter?"],
        );
        for model in CnnModel::ALL {
            let a = Breakdown::from_report(
                "A",
                &measure(Platform::ShmCaffeA, model, gpus, DEFAULT_MEASURE_ITERS, 42)
                    .expect("platform runs"),
            );
            let h = Breakdown::from_report(
                "H",
                &measure(Platform::ShmCaffeH, model, gpus, DEFAULT_MEASURE_ITERS, 42)
                    .expect("platform runs"),
            );
            let a_iter = a.comp_ms + a.comm_ms;
            let h_iter = h.comp_ms + h.comm_ms;
            table.row_owned(vec![
                model.to_string(),
                ms(a.comm_ms),
                ms(h.comm_ms),
                ms(a_iter),
                ms(h_iter),
                if h_iter <= a_iter { "yes".into() } else { "no".into() },
            ]);
        }
        table.print();
    }
    println!("paper: H beats A on iteration time for all models at 16 GPUs.");
}
